"""The multi-tenant graph service: sessions, admission control, batched
execution, concurrency correctness, and the TCP front-end."""

import threading
import time

import numpy as np
import pytest

import repro as grb
from repro import context, validation
from repro.service import (
    BadRequest,
    Client,
    DeadlineExceeded,
    ObjectNotFound,
    QueueFull,
    Service,
    ServiceConfig,
    ServiceClosed,
    SessionNotFound,
    TCPClient,
)
from repro.service.loadgen import build_streams, diff_results, run_direct

ENTRIES = [[0, 1, 1.0], [1, 2, 1.0], [2, 3, 1.0], [3, 0, 1.0], [0, 2, 1.0]]


def _define_graph(c, name="g", n=4, entries=ENTRIES):
    return c.define(name, "matrix", "FP64", [n, n], entries=entries)


@pytest.fixture
def svc():
    with Service(workers=2, queue_capacity=8) as s:
        yield s


class TestSessions:
    def test_open_generates_names(self, svc):
        a, b = svc.open_session(), svc.open_session()
        assert a != b

    def test_reopen_is_noop(self, svc):
        assert svc.open_session("x") == "x"
        assert svc.open_session("x") == "x"

    def test_unknown_session_rejected(self, svc):
        with pytest.raises(SessionNotFound):
            svc.submit("ghost", "query", {"name": "g"})

    def test_close_session_drains_then_rejects(self, svc):
        c = Client(svc)
        _define_graph(c)
        c.close()
        with pytest.raises(SessionNotFound):
            svc.submit(c.session, "query", {"name": "g"})

    def test_shared_session_cannot_close(self, svc):
        with pytest.raises(SessionNotFound):
            svc.close_session("shared")

    def test_sessions_are_isolated(self, svc):
        a, b = Client(svc), Client(svc)
        _define_graph(a)
        with pytest.raises(ObjectNotFound):
            b.query("g")

    def test_session_context_isolation(self, svc):
        # a session's nonblocking context never leaks into the caller's
        assert context.current_mode() is context.Mode.BLOCKING
        c = Client(svc)
        _define_graph(c)
        assert context.current_mode() is context.Mode.BLOCKING


class TestRequests:
    def test_unknown_kind_rejected_synchronously(self, svc):
        s = svc.open_session()
        with pytest.raises(BadRequest):
            svc.submit(s, "frobnicate", {})

    def test_define_and_query(self, svc):
        c = Client(svc)
        assert _define_graph(c) == {"name": "g", "nvals": 5}
        assert c.query("g") == {"nvals": 5}
        t = c.query("g", "tuples")
        assert t["kind"] == "matrix" and len(t["rows"]) == 5

    def test_program_with_fetch(self, svc):
        c = Client(svc)
        _define_graph(c)
        out = c.program(
            calls=[{"kind": "mxm", "out": "C",
                    "args": {"a": "g", "b": "g",
                             "semiring": "GrB_PLUS_TIMES_SEMIRING_FP64"}}],
            declare=[{"name": "C", "kind": "matrix", "dtype": "FP64",
                      "shape": [4, 4]}],
            fetch=["C"],
        )
        fetched = out["fetched"]["C"]
        assert fetched["kind"] == "matrix" and len(fetched["rows"]) > 0

    def test_algorithm_store_and_consume(self, svc):
        c = Client(svc)
        _define_graph(c)
        r = c.algorithm("bfs_levels", "g", source=0, store_as="lv")
        assert r["stored"] == "lv"
        assert c.query("lv", "tuples")["values"] == [0, 1, 1, 2]

    def test_update_then_query_reflects_mutation(self, svc):
        c = Client(svc)
        _define_graph(c)
        r = c.update("g", set=[(3, 2, 9.0)], remove=[(0, 2)])
        assert r["nvals"] == 5
        assert c.query("g", "element", row=3, col=2) == {
            "value": 9.0, "stored": True,
        }

    def test_upload_download_round_trip(self, svc):
        c = Client(svc)
        A = grb.Matrix.from_coo(
            grb.FP64, 3, 3, [0, 1], [1, 2], [5.0, 6.0]
        )
        c.upload("m", A)
        B = c.download("m")
        assert B.nvals() == 2 and B.extract_element(1, 2) == 6.0

    def test_free(self, svc):
        c = Client(svc)
        _define_graph(c)
        assert c.free("g") == {"freed": "g"}
        with pytest.raises(ObjectNotFound):
            c.query("g")

    def test_typed_errors_surface_through_future(self, svc):
        c = Client(svc)
        with pytest.raises(ObjectNotFound):
            c.query("never-defined")
        with pytest.raises(BadRequest):
            c.request("algorithm", {"algo": "nope", "graph": "g"})

    def test_batch_responses_respect_program_order(self, svc):
        # pipelined define+updates land in one batch; each response must
        # reflect its own point in program order, not the batch's end state
        s = svc.open_session()
        futs = [svc.submit(s, "define", {
            "name": "g", "kind": "matrix", "dtype": "FP64",
            "shape": [4, 4], "entries": ENTRIES,
        })]
        for k in range(3):
            futs.append(svc.submit(s, "update", {
                "graph": "g", "set": [[3, k, 1.0]], "remove": [],
            }))
        nvals = [f.result(timeout=30).get("nvals") for f in futs]
        # (3,0) pre-exists, so the first update overwrites; the rest insert
        assert nvals == [5, 5, 6, 7]


class TestSharedGraphs:
    def test_shared_visible_to_all_sessions_readonly(self, svc):
        svc.request("shared", "define", {
            "name": "G", "kind": "matrix", "dtype": "FP64",
            "shape": [4, 4], "entries": ENTRIES,
        })
        c = Client(svc)
        assert c.query("shared:G") == {"nvals": 5}
        with pytest.raises(BadRequest):
            c.update("shared:G", set=[(0, 0, 1.0)])
        with pytest.raises(BadRequest):
            c.request("free", {"name": "shared:G"})

    def test_shared_mutation_through_shared_session(self, svc):
        svc.request("shared", "define", {
            "name": "G", "kind": "matrix", "dtype": "FP64",
            "shape": [4, 4], "entries": ENTRIES,
        })
        svc.request("shared", "update", {
            "graph": "G", "set": [[3, 3, 1.0]], "remove": [],
        })
        c = Client(svc)
        assert c.query("shared:G") == {"nvals": 6}


class TestAdmissionControl:
    def test_queue_full_rejects_with_typed_error_then_recovers(self):
        # autostart=False: fill the bounded queue deterministically
        svc = Service(workers=1, queue_capacity=3, autostart=False)
        s = svc.open_session()
        futs = [svc.submit(s, "query", {"name": "missing"})
                for _ in range(3)]
        with pytest.raises(QueueFull):
            svc.submit(s, "query", {"name": "missing"})
        assert svc.stats()["rejected_queue_full"] >= 1
        # backpressure never deadlocks: starting the pool drains the queue
        svc.start()
        for f in futs:
            with pytest.raises(ObjectNotFound):
                f.result(timeout=30)
        svc.shutdown()

    def test_deadline_expired_in_queue(self):
        svc = Service(workers=1, queue_capacity=8, autostart=False)
        s = svc.open_session()
        fut = svc.submit(s, "query", {"name": "g"}, timeout=0.01)
        time.sleep(0.05)
        svc.start()
        with pytest.raises(DeadlineExceeded):
            fut.result(timeout=30)
        assert svc.stats()["deadline_exceeded"] == 1
        svc.shutdown()

    def test_shutdown_rejects_new_work(self, svc):
        s = svc.open_session()
        svc.shutdown()
        with pytest.raises(ServiceClosed):
            svc.submit(s, "query", {"name": "g"})

    def test_nondrain_shutdown_fails_queued_futures(self):
        svc = Service(workers=1, queue_capacity=8, autostart=False)
        s = svc.open_session()
        fut = svc.submit(s, "query", {"name": "g"})
        svc.shutdown(drain=False)
        with pytest.raises(ServiceClosed):
            fut.result(timeout=5)

    def test_graceful_drain_completes_admitted_work(self):
        svc = Service(workers=2, queue_capacity=64, autostart=False)
        s = svc.open_session()
        futs = [svc.submit(s, "define", {
            "name": f"m{k}", "kind": "matrix", "dtype": "FP64",
            "shape": [3, 3], "entries": [[0, 1, float(k)]],
        }) for k in range(10)]
        svc.start()
        svc.shutdown(drain=True)
        assert [f.result(timeout=5)["nvals"] for f in futs] == [1] * 10


class TestObservability:
    def test_stats_shape(self, svc):
        c = Client(svc)
        _define_graph(c)
        c.query("g")
        st = svc.stats()
        assert st["admitted"] >= 2 and st["completed"] >= 2
        assert st["latency_p50_us"] is not None
        assert st["latency_p99_us"] >= st["latency_p50_us"]
        assert c.session in st["sessions"]
        assert st["sessions"][c.session]["completed"] == 2

    def test_latency_histogram_in_registry(self, svc):
        c = Client(svc)
        _define_graph(c)
        snap = svc.metrics_snapshot()
        assert "service.latency_us" in snap["histograms"]
        assert "service.queue_wait_us" in snap["histograms"]
        assert snap["counters"]["service.batches"] >= 1

    def test_spans_capture_serving_window(self):
        from repro import obs

        with obs.capture() as cap:
            with Service(workers=2, queue_capacity=8) as svc:
                c = Client(svc)
                _define_graph(c)
                c.algorithm("bfs_levels", "g", source=0)
        kinds = {s.label for s in cap.spans}
        assert "batch" in kinds and "request:define" in kinds
        trace = cap.chrome_trace()
        assert trace["traceEvents"]

    def test_validate_all(self, svc):
        c = Client(svc)
        _define_graph(c)
        assert svc.validate_all() >= 1

    def test_client_metrics_parity_with_tcp(self):
        """Local Client and TCPClient expose the same admin surface with
        the same snapshot shape."""
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            local = Client(srv.service)
            remote = TCPClient(host, port)
            _define_graph(local)
            _define_graph(remote, name="g2")

            for snap in (local.metrics(), remote.metrics()):
                assert set(snap) >= {"counters", "histograms"}
                assert snap["counters"]["service.admitted"] >= 2
                assert "service.latency_us" in snap["histograms"]
                hist = snap["histograms"]["service.latency_us"]
                assert set(hist) >= {"count", "total", "buckets"}

            for h in (local.health(), remote.health()):
                assert h["status"] in ("ok", "idle")
                assert h["workers"] >= 1
            assert local.ping() == remote.ping() == {"pong": True}
            remote.close()


class TestConcurrencyCorrectness:
    def test_concurrent_clients_match_serial_replay(self):
        # N threads over shared + private graphs; everything each client
        # saw must equal a serial replay (1 worker, no batching) of the
        # same deterministic streams
        streams = build_streams(seed=23, clients=6, requests=90)
        live = run_direct(streams, seed=23, workers=4, pipeline=6)
        assert not live["errors"]
        ref = run_direct(streams, seed=23, workers=1, batching=False,
                         pipeline=1)
        assert not ref["errors"]
        assert diff_results(live["results"], ref["results"]) == []

    def test_objects_stay_valid_under_concurrency(self):
        streams = build_streams(seed=31, clients=4, requests=40)
        svc = Service(workers=4, queue_capacity=32)
        try:
            svc.request("shared", "define", {
                "name": "G", "kind": "matrix", "dtype": "FP64",
                "shape": [8, 8], "entries": [[0, 1, 1.0], [1, 0, 2.0]],
            })
            def client_fn(ci):
                sess = svc.open_session(f"t{ci}")
                for kind, payload in streams[ci]:
                    if "shared:" in str(payload):
                        continue  # this run defines a smaller shared G
                    svc.request(sess, kind, payload)
            threads = [threading.Thread(target=client_fn, args=(i,))
                       for i in range(len(streams))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # structural invariants of every tenant's store still hold
            assert svc.validate_all() > 0
        finally:
            svc.shutdown()


class TestTCP:
    def test_round_trip_and_typed_errors(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            c = TCPClient(host, port)
            _define_graph(c)
            assert c.query("g") == {"nvals": 5}
            r = c.algorithm("pagerank", "g", store_as="pr")
            assert r["stored"] == "pr"
            blob_obj = c.download("g")
            assert blob_obj.nvals() == 5
            with pytest.raises(ObjectNotFound):
                c.query("missing")
            assert c.call("ping") == {"pong": True}
            assert c.stats()["completed"] >= 3
            c.close()

    def test_two_connections_one_session(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            a = TCPClient(host, port, session="pair")
            b = TCPClient(host, port, session="pair")
            _define_graph(a)
            assert b.query("g") == {"nvals": 5}
            a.close(close_session=False)
            b.close()

    def test_malformed_line_is_rejected_not_fatal(self):
        import socket

        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            raw = socket.create_connection((host, port))
            raw.sendall(b"this is not json\n")
            resp = raw.makefile("rb").readline()
            assert b'"ok":false' in resp.replace(b" ", b"")
            raw.close()
            # the server still serves real clients afterwards
            c = TCPClient(host, port)
            assert c.call("ping") == {"pong": True}
            c.close()
