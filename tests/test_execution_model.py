"""Execution model (paper section IV) and error timing (section V)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary


def _chain(n=4):
    """A small op sequence with intermediates; returns final dense result."""
    A = grb.Matrix.from_coo(
        grb.INT64, n, n, np.arange(n), (np.arange(n) + 1) % n, np.arange(2, n + 2)
    )
    T1 = grb.Matrix(grb.INT64, n, n)
    T2 = grb.Matrix(grb.INT64, n, n)
    grb.mxm(T1, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
    grb.ewise_add(T2, None, None, binary.PLUS[grb.INT64], T1, A)
    grb.apply(T2, None, None, grb.ops.unary.AINV[grb.INT64], T2)
    return T2.to_dense(0)


class TestModes:
    def test_default_mode_is_blocking(self):
        assert grb.current_mode() is grb.Mode.BLOCKING

    def test_init_sets_mode(self):
        grb.init(grb.Mode.NONBLOCKING)
        assert grb.current_mode() is grb.Mode.NONBLOCKING

    def test_init_twice_is_invalid(self):
        grb.init()
        with pytest.raises(grb.InvalidValue):
            grb.init()

    def test_init_after_finalize_is_invalid(self):
        grb.init()
        grb.finalize()
        with pytest.raises(grb.InvalidValue):
            grb.init()

    def test_finalize_twice_is_invalid(self):
        grb.init()
        grb.finalize()
        with pytest.raises(grb.InvalidValue):
            grb.finalize()

    def test_methods_after_finalize_rejected(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix(grb.INT64, 2, 2)
        grb.finalize()
        with pytest.raises(grb.InvalidValue):
            grb.mxm(A, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)


class TestEquivalence:
    def test_nonblocking_equals_blocking(self):
        blocking = _chain()
        from repro import context

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        nonblocking = _chain()
        assert (blocking == nonblocking).all()

    def test_wait_after_each_op_equals_blocking(self):
        # "a sequence in nonblocking mode where every operation is followed
        # by GrB_wait() is equivalent to ... blocking mode" (section IV)
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        grb.wait()
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], C, A)
        grb.wait()
        assert (C.to_dense(0) == A.to_dense(0) @ A.to_dense(0) + A.to_dense(0)).all()


class TestDeferral:
    def test_ops_defer_until_wait(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        stats = grb.queue_stats()
        assert stats["enqueued"] == 1 and stats["executed"] == 0
        grb.wait()
        assert grb.queue_stats()["executed"] == 1

    def test_nvals_forces_completion(self):
        # nvals outputs a non-opaque value: it may not defer (section IV);
        # Fig. 3 line 44 relies on this inside the BFS loop
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert C.nvals() == 4
        assert grb.queue_stats()["executed"] == 1

    def test_extract_tuples_forces_completion(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[2, 0], [0, 2]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        _, _, vals = C.extract_tuples()
        assert vals.tolist() == [4, 4]

    def test_reduce_scalar_forces_completion(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert grb.reduce_to_scalar(grb.monoid("GrB_PLUS_MONOID_INT64"), C) == 8

    def test_program_order_preserved_with_mutation(self):
        # a deferred op followed by set_element must apply in order
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 0], [0, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        C.set_element(0, 0, 99)  # non-deferrable: drains queue first
        assert C.extract_element(0, 0) == 99

    def test_reading_unrelated_object_does_not_drain(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        other = grb.Matrix.from_dense(grb.INT64, [[5]])
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert other.nvals() == 1
        assert grb.queue_stats()["executed"] == 0  # C's op still queued


class TestDeadOpElimination:
    def test_pure_overwrite_elides_earlier_op(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)  # dead
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, A)
        grb.wait()
        s = grb.queue_stats()
        assert s["elided"] == 1 and s["executed"] == 1
        assert (C.to_dense(0) == 2 * A.to_dense(0)).all()

    def test_read_in_between_keeps_op(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        D = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        grb.apply(D, None, None, grb.ops.unary.IDENTITY[grb.INT64], C)  # reads C
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, A)
        grb.wait()
        assert grb.queue_stats()["elided"] == 0
        assert (D.to_dense(0) == A.to_dense(0) @ A.to_dense(0)).all()

    def test_accum_op_is_not_pure_overwrite(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        grb.ewise_add(C, None, binary.PLUS[grb.INT64], binary.PLUS[grb.INT64], A, A)
        grb.wait()
        assert grb.queue_stats()["elided"] == 0
        assert (C.to_dense(0) == A.to_dense(0) @ A.to_dense(0) + 2 * A.to_dense(0)).all()


class TestErrorTiming:
    def test_api_errors_raised_immediately_in_nonblocking(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix(grb.INT64, 2, 3)
        C = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert grb.queue_stats()["enqueued"] == 0

    def test_execution_error_surfaces_at_wait(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise grb.info.OutOfMemory("simulated allocation failure")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.ewise_mult(C, None, None, bad, A, A)  # no error yet
        with pytest.raises(grb.info.OutOfMemory):
            grb.wait()
        assert "OUT_OF_MEMORY" in grb.error()

    def test_execution_error_poisons_output(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise grb.info.OutOfMemory("x")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, bad, A, A)
        with pytest.raises(grb.GraphBLASError):
            grb.wait()
        with pytest.raises(grb.InvalidObject):
            C.nvals()
        # and using the invalid object as an input is an API-time error
        D = grb.Matrix(grb.INT64, 1, 1)
        with pytest.raises(grb.InvalidObject):
            grb.apply(D, None, None, grb.ops.unary.IDENTITY[grb.INT64], C)

    def test_downstream_ops_poisoned_too(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise grb.info.OutOfMemory("x")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        D = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, bad, A, A)
        grb.apply(D, None, None, grb.ops.unary.IDENTITY[grb.INT64], C)
        with pytest.raises(grb.GraphBLASError):
            grb.wait()
        with pytest.raises(grb.InvalidObject):
            D.nvals()

    def test_error_in_blocking_mode_raises_at_call(self):
        def boom(x, y):
            raise grb.info.OutOfMemory("x")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        with pytest.raises(grb.info.OutOfMemory):
            grb.ewise_mult(C, None, None, bad, A, A)
            grb.wait()  # blocking: already raised above

    def test_foreign_exception_becomes_panic(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise RuntimeError("not a GraphBLAS error")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, bad, A, A)
        with pytest.raises(grb.info.Panic):
            grb.wait()


class TestQueueStats:
    def test_counts(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        for _ in range(3):
            grb.apply(C, None, None, grb.ops.unary.IDENTITY[grb.INT64], A)
        grb.wait()
        s = grb.queue_stats()
        assert s["enqueued"] == 3
        assert s["executed"] + s["elided"] == 3
        assert s["elided"] == 2  # first two results never observed
        assert s["drains"] == 1
