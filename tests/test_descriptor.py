"""Descriptors and Table V literals (paper section III-C)."""

import pytest

import repro as grb
from repro.descriptor import Field, Value, effective


class TestDescriptorBasics:
    def test_new_is_default(self):
        d = grb.descriptor_new()
        assert not d.replace and not d.mask_complement
        assert not d.transpose0 and not d.transpose1

    def test_fig3_desc_tsr(self):
        # lines 14-18 of Fig. 3
        d = grb.descriptor_new()
        grb.descriptor_set(d, grb.INP0, grb.TRAN)
        grb.descriptor_set(d, grb.MASK, grb.SCMP)
        grb.descriptor_set(d, grb.OUTP, grb.REPLACE)
        assert d.transpose0 and d.mask_complement and d.replace
        assert not d.transpose1

    def test_set_returns_self_for_chaining(self):
        d = grb.Descriptor().set(grb.OUTP, grb.REPLACE).set(grb.INP1, grb.TRAN)
        assert d.replace and d.transpose1

    def test_invalid_field_value_combo(self):
        d = grb.descriptor_new()
        with pytest.raises(grb.InvalidValue):
            d.set(grb.OUTP, grb.TRAN)  # TRAN only valid on inputs
        with pytest.raises(grb.InvalidValue):
            d.set(grb.MASK, grb.REPLACE)
        with pytest.raises(grb.InvalidValue):
            d.set(grb.INP0, grb.SCMP)

    def test_non_enum_arguments(self):
        d = grb.descriptor_new()
        with pytest.raises(grb.InvalidValue):
            d.set("GrB_OUTP", grb.REPLACE)
        with pytest.raises(grb.InvalidValue):
            d.set(grb.OUTP, "GrB_REPLACE")

    def test_null_descriptor_in_set(self):
        with pytest.raises(grb.NullPointer):
            grb.descriptor_set(None, grb.OUTP, grb.REPLACE)

    def test_mask_flags_compose(self):
        d = grb.Descriptor().set(grb.MASK, grb.SCMP).set(grb.MASK, grb.STRUCTURE)
        assert d.mask_complement and d.mask_structure

    def test_freed_descriptor_unusable(self):
        d = grb.descriptor_new()
        d.free()
        with pytest.raises(grb.UninitializedObject):
            d.set(grb.OUTP, grb.REPLACE)
        with pytest.raises(grb.UninitializedObject):
            _ = d.replace


class TestPresets:
    def test_desc_tsr_preset_matches_fig3(self):
        assert grb.DESC_TSR.transpose0
        assert grb.DESC_TSR.mask_complement
        assert grb.DESC_TSR.replace
        assert not grb.DESC_TSR.transpose1

    def test_simple_presets(self):
        assert grb.DESC_T0.transpose0 and not grb.DESC_T0.transpose1
        assert grb.DESC_T1.transpose1 and not grb.DESC_T1.transpose0
        assert grb.DESC_T0T1.transpose0 and grb.DESC_T0T1.transpose1
        assert grb.DESC_R.replace
        assert grb.DESC_SC.mask_complement
        assert grb.DESC_RSC.replace and grb.DESC_RSC.mask_complement


class TestLiterals:
    def test_table5_literals_exist(self):
        # every literal of Table V has a Python counterpart
        assert grb.ALL is not None
        assert grb.NULL is None
        assert isinstance(grb.OUTP, Field) and isinstance(grb.MASK, Field)
        assert isinstance(grb.INP0, Field) and isinstance(grb.INP1, Field)
        assert isinstance(grb.REPLACE, Value)
        assert isinstance(grb.SCMP, Value)
        assert isinstance(grb.TRAN, Value)
        assert grb.BOOL is not None and grb.INT32 is not None
        assert grb.FP32 is not None

    def test_spec_string_values(self):
        assert grb.OUTP.value == "GrB_OUTP"
        assert grb.REPLACE.value == "GrB_REPLACE"
        assert grb.SCMP.value == "GrB_SCMP"
        assert grb.TRAN.value == "GrB_TRAN"

    def test_effective_null_is_default(self):
        d = effective(None)
        assert not d.replace and not d.transpose0

    def test_all_repr(self):
        assert repr(grb.ALL) == "GrB_ALL"
