"""User-defined types end-to-end: the power-set semiring (Table I row 5)
flowing through collections, mxm, eWise, and reduce."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import Monoid, Semiring
from repro.ops.base import BinaryOp, UnaryOp


@pytest.fixture
def pset():
    domain = grb.powerset_type()
    semiring = grb.powerset_semiring(domain=domain)
    return domain, semiring


def fs(*xs):
    return frozenset(xs)


class TestPowerSetCollections:
    def test_matrix_of_sets(self, pset):
        domain, _ = pset
        A = grb.Matrix(domain, 2, 2)
        A.set_element(0, 0, fs(1, 2))
        A.set_element(1, 1, fs(3))
        assert A.extract_element(0, 0) == fs(1, 2)
        assert A.nvals() == 2

    def test_build_with_union_dup(self, pset):
        domain, s = pset
        A = grb.Matrix(domain, 2, 2)
        A.build([0, 0], [0, 0], [fs(1), fs(2)], dup=s.add_op)
        assert A.extract_element(0, 0) == fs(1, 2)


class TestPowerSetMxm:
    def test_union_intersect_product(self, pset):
        domain, s = pset
        # A(0,0)={1,2}, A(0,1)={2,3}; B(0,0)={2}, B(1,0)={3,4}
        A = grb.Matrix(domain, 1, 2)
        A.build([0, 0], [0, 1], [fs(1, 2), fs(2, 3)])
        B = grb.Matrix(domain, 2, 1)
        B.build([0, 1], [0, 0], [fs(2), fs(3, 4)])
        C = grb.Matrix(domain, 1, 1)
        grb.mxm(C, None, None, s, A, B)
        # ({1,2}∩{2}) ∪ ({2,3}∩{3,4}) = {2} ∪ {3} = {2,3}
        assert C.extract_element(0, 0) == fs(2, 3)

    def test_empty_set_values_are_stored(self, pset):
        domain, s = pset
        A = grb.Matrix(domain, 1, 1)
        A.set_element(0, 0, fs(1))
        B = grb.Matrix(domain, 1, 1)
        B.set_element(0, 0, fs(2))
        C = grb.Matrix(domain, 1, 1)
        grb.mxm(C, None, None, s, A, B)
        # disjoint sets intersect to ∅ — a stored empty set, NOT absence
        assert C.nvals() == 1
        assert C.extract_element(0, 0) == fs()

    def test_mxv_over_powerset(self, pset):
        domain, s = pset
        A = grb.Matrix(domain, 2, 2)
        A.build([0, 1], [0, 1], [fs(1, 2), fs(3)])
        u = grb.Vector(domain, 2)
        u.build([0, 1], [fs(2, 9), fs(3, 4)])
        w = grb.Vector(domain, 2)
        grb.mxv(w, None, None, s, A, u)
        assert w.extract_element(0) == fs(2)
        assert w.extract_element(1) == fs(3)


class TestPowerSetEWiseReduce:
    def test_ewise_add_union(self, pset):
        domain, s = pset
        u = grb.Vector(domain, 3)
        u.build([0, 1], [fs(1), fs(2)])
        v = grb.Vector(domain, 3)
        v.build([1, 2], [fs(3), fs(4)])
        w = grb.Vector(domain, 3)
        grb.ewise_add(w, None, None, s.add_op, u, v)
        assert {i: x for i, x in w} == {0: fs(1), 1: fs(2, 3), 2: fs(4)}

    def test_reduce_to_scalar_union(self, pset):
        domain, s = pset
        A = grb.Matrix(domain, 2, 2)
        A.build([0, 1], [1, 0], [fs(1, 2), fs(2, 5)])
        total = grb.reduce_to_scalar(s.add, A)
        assert total == fs(1, 2, 5)

    def test_apply_user_unary(self, pset):
        domain, _ = pset
        size_of = grb.unary_op_new(
            lambda x: np.int64(len(x)), domain, grb.INT64, name="set_size"
        )
        u = grb.Vector(domain, 2)
        u.build([0, 1], [fs(1, 2, 3), fs()])
        w = grb.Vector(grb.INT64, 2)
        grb.apply(w, None, None, size_of, u)
        assert w.to_dense(-1).tolist() == [3, 0]


class TestUDTDomainRules:
    def test_no_implicit_cast_between_udts(self, pset):
        domain, s = pset
        other = grb.powerset_type()  # a distinct registration
        A = grb.Matrix(domain, 1, 1)
        A.set_element(0, 0, fs(1))
        C = grb.Matrix(other, 1, 1)
        with pytest.raises(grb.DomainMismatch):
            grb.mxm(C, None, None, s, A, A)

    def test_udt_cannot_feed_builtin_op(self, pset):
        domain, _ = pset
        A = grb.Matrix(domain, 1, 1)
        A.set_element(0, 0, fs(1))
        C = grb.Matrix(grb.INT64, 1, 1)
        from repro.algebra import predefined

        with pytest.raises(grb.DomainMismatch):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)

    def test_udt_mask_rejected(self, pset):
        domain, s = pset
        A = grb.Matrix(domain, 1, 1)
        M = grb.Matrix(domain, 1, 1)
        C = grb.Matrix(domain, 1, 1)
        with pytest.raises(grb.DomainMismatch):
            grb.mxm(C, M, None, s, A, A)
