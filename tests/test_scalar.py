"""``GrB_Scalar`` (spec 2.0): the 0-or-1-element opaque collection."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary


class TestScalarBasics:
    def test_new_is_empty(self):
        s = grb.scalar_new(grb.FP64)
        assert s.nvals() == 0 and s.is_empty()
        assert s.type is grb.FP64

    def test_set_and_extract(self):
        s = grb.Scalar(grb.INT32)
        s.set_value(41)
        assert s.nvals() == 1
        assert s.extract_value() == 41

    def test_extract_empty_is_no_value(self):
        s = grb.Scalar(grb.INT32)
        with pytest.raises(grb.NoValue):
            s.extract_value()

    def test_set_casts_to_domain(self):
        s = grb.Scalar(grb.INT8)
        s.set_value(300)
        assert s.extract_value() == 44  # wraps like C

    def test_clear(self):
        s = grb.Scalar.from_value(grb.FP32, 2.5)
        s.clear()
        assert s.is_empty()

    def test_dup(self):
        s = grb.Scalar.from_value(grb.FP64, 1.5)
        t = s.dup()
        t.set_value(9.0)
        assert s.extract_value() == 1.5

    def test_free(self):
        s = grb.Scalar(grb.FP64)
        s.free()
        with pytest.raises(grb.UninitializedObject):
            s.nvals()

    def test_udt_scalar(self):
        T = grb.powerset_type()
        s = grb.Scalar(T)
        s.set_value(frozenset({1, 2}))
        assert s.extract_value() == frozenset({1, 2})
        with pytest.raises(grb.InvalidValue):
            s.set_value({1, 2})

    def test_null_domain(self):
        with pytest.raises(grb.NullPointer):
            grb.Scalar(None)


class TestReduceIntoScalar:
    def test_reduce_matrix(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        s = grb.Scalar(grb.INT64)
        grb.reduce_scalar_object(s, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert s.extract_value() == 10

    def test_reduce_empty_makes_scalar_empty(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        s = grb.Scalar.from_value(grb.INT64, 99)
        grb.reduce_scalar_object(s, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert s.is_empty()  # not identity-valued: no stored elements

    def test_reduce_with_accum(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        s = grb.Scalar.from_value(grb.INT64, 100)
        grb.reduce_scalar_object(
            s, binary.PLUS[grb.INT64], grb.monoid("GrB_PLUS_MONOID_INT64"), A
        )
        assert s.extract_value() == 110

    def test_reduce_is_deferrable(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        s = grb.Scalar(grb.INT64)
        grb.reduce_scalar_object(s, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert grb.queue_stats()["executed"] == 0  # still queued
        assert s.extract_value() == 4  # forces completion
        assert grb.queue_stats()["executed"] == 1

    def test_domain_checks(self):
        T = grb.powerset_type()
        A = grb.Matrix(T, 2, 2)
        s = grb.Scalar(grb.INT64)
        with pytest.raises(grb.DomainMismatch):
            grb.reduce_scalar_object(
                s, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A
            )


class TestScalarInAssign:
    def test_assign_scalar_object(self):
        C = grb.Matrix(grb.FP64, 2, 2)
        s = grb.Scalar.from_value(grb.FP64, 7.0)
        grb.matrix_assign_scalar(C, None, None, s, grb.ALL, grb.ALL)
        assert (C.to_dense(0) == 7.0).all()

    def test_assign_empty_scalar_deletes_region(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        s = grb.Scalar(grb.INT64)  # empty
        grb.matrix_assign_scalar(C, None, None, s, [0], grb.ALL)
        # row 0 deleted, row 1 intact
        assert {(i, j): int(v) for i, j, v in C} == {(1, 0): 3, (1, 1): 4}

    def test_assign_empty_scalar_with_accum_is_noop(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        s = grb.Scalar(grb.INT64)
        grb.matrix_assign_scalar(
            C, None, binary.PLUS[grb.INT64], s, grb.ALL, grb.ALL
        )
        assert C.to_dense(0).tolist() == [[1, 2], [3, 4]]

    def test_vector_assign_scalar_object(self):
        w = grb.Vector(grb.INT32, 3)
        s = grb.Scalar.from_value(grb.INT32, -5)
        grb.vector_assign_scalar(w, None, None, s, grb.ALL)
        assert w.to_dense(0).tolist() == [-5, -5, -5]

    def test_deferred_producer_consumer_chain(self):
        # scalar produced by a deferred reduce feeds a deferred assign
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        s = grb.Scalar(grb.INT64)
        grb.reduce_scalar_object(s, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        w = grb.Vector(grb.INT64, 3)
        grb.vector_assign_scalar(w, None, None, s, grb.ALL)
        assert w.to_dense(0).tolist() == [10, 10, 10]
