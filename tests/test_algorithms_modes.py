"""Mode is an execution strategy, not a semantic: every algorithm must
produce *bit-identical* results under blocking mode and under nonblocking
mode with the full drain-time planner (fusion, CSE, dead-op elimination,
parallel scheduling).  Exact equality — not approx — is the contract the
serving layer's batched execution relies on."""

import numpy as np
import pytest

import repro as grb
from repro import context
from repro.algorithms import (
    betweenness_centrality,
    bfs_levels,
    bfs_parents,
    connected_components,
    core_numbers,
    greedy_coloring,
    pagerank,
    sssp,
    triangle_count,
)
from repro.io import erdos_renyi, grid_2d, rmat


def _both_modes(fn):
    """Run *fn* twice — blocking default context, then an activated
    nonblocking session context (planner fully on) — returning both."""
    blocking = fn()
    with context.activate(context.Context(context.Mode.NONBLOCKING)):
        nonblocking = fn()
        context.wait()
    return blocking, nonblocking


def _assert_bits(a, b):
    if isinstance(a, grb.Matrix):
        ra, ca, va = a.extract_tuples()
        rb, cb, vb = b.extract_tuples()
        assert ra.tobytes() == rb.tobytes()
        assert ca.tobytes() == cb.tobytes()
        assert va.tobytes() == vb.tobytes()
    elif isinstance(a, grb.Vector):
        ia, va = a.extract_tuples()
        ib, vb = b.extract_tuples()
        assert ia.tobytes() == ib.tobytes()
        assert va.tobytes() == vb.tobytes()
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.tobytes() == b.tobytes()
    else:
        assert type(a) is type(b) and a == b


@pytest.fixture(scope="module")
def graphs():
    return {
        "er": erdos_renyi(60, 300, seed=5, domain=grb.FP64),
        "er_int": erdos_renyi(48, 200, seed=9, domain=grb.INT32),
        "grid": grid_2d(6, 7, domain=grb.INT32),
        "rmat": rmat(6, 256, seed=17, domain=grb.FP64),
    }


class TestBitIdentityAcrossModes:
    def test_bfs_levels(self, graphs):
        a, b = _both_modes(lambda: bfs_levels(graphs["er_int"], 0))
        _assert_bits(a, b)

    def test_bfs_parents(self, graphs):
        a, b = _both_modes(lambda: bfs_parents(graphs["er_int"], 3))
        _assert_bits(a, b)

    def test_sssp(self, graphs):
        a, b = _both_modes(lambda: sssp(graphs["er"], 1))
        _assert_bits(a, b)

    def test_pagerank(self, graphs):
        # float accumulation order must also be stable across modes
        a, b = _both_modes(lambda: pagerank(graphs["rmat"]))
        _assert_bits(a, b)

    def test_triangle_count(self, graphs):
        a, b = _both_modes(lambda: triangle_count(graphs["grid"]))
        _assert_bits(a, b)

    def test_connected_components(self, graphs):
        a, b = _both_modes(lambda: connected_components(graphs["grid"]))
        _assert_bits(a, b)

    def test_betweenness_centrality(self, graphs):
        a, b = _both_modes(lambda: betweenness_centrality(graphs["er_int"]))
        _assert_bits(a, b)

    def test_core_numbers(self, graphs):
        a, b = _both_modes(lambda: core_numbers(graphs["er_int"]))
        _assert_bits(a, b)

    def test_greedy_coloring(self, graphs):
        a, b = _both_modes(lambda: greedy_coloring(graphs["grid"]))
        _assert_bits(a, b)

    def test_matrix_pipeline(self, graphs):
        # a hand-rolled multi-op pipeline: planner fusion/CSE candidates
        A = graphs["er"]

        def run():
            C = grb.Matrix(grb.FP64, A.nrows, A.ncols)
            D = grb.Matrix(grb.FP64, A.nrows, A.ncols)
            sr = grb.PLUS_TIMES[grb.FP64]
            grb.mxm(C, None, None, sr, A, A)
            grb.mxm(D, None, None, sr, A, A)  # CSE with the line above
            E = grb.Matrix(grb.FP64, A.nrows, A.ncols)
            grb.ewise_add(E, None, None, grb.PLUS[grb.FP64], C, D)
            return E

        a, b = _both_modes(run)
        _assert_bits(a, b)
