"""The C-style shim: GrB_* names, Info return codes, Ref out-parameters."""

import numpy as np
import pytest

import repro as grb
from repro import capi
from repro.capi import (
    GrB_ALL,
    GrB_BOOL,
    GrB_INT32,
    GrB_INT64,
    GrB_NULL,
    GrB_SUCCESS,
    GrB_NO_VALUE,
    Ref,
)
from repro.ops import binary, unary


class TestRefsAndCodes:
    def test_matrix_new_via_ref(self):
        A = Ref()
        assert capi.GrB_Matrix_new(A, GrB_INT32, 3, 4) == GrB_SUCCESS
        assert isinstance(A.value, grb.Matrix)
        assert A.value.shape == (3, 4)

    def test_error_becomes_code_not_exception(self):
        A = Ref()
        info = capi.GrB_Matrix_new(A, GrB_INT32, 0, 4)
        assert info == grb.Info.INVALID_VALUE
        assert A.value is None

    def test_null_out_pointer(self):
        assert capi.GrB_Matrix_new(None, GrB_INT32, 2, 2) == grb.Info.NULL_POINTER

    def test_nrows_ncols_nvals(self):
        A = Ref()
        capi.GrB_Matrix_new(A, GrB_INT32, 3, 4)
        n = Ref()
        assert capi.GrB_Matrix_nrows(n, A.value) == GrB_SUCCESS
        assert n.value == 3
        capi.GrB_Matrix_ncols(n, A.value)
        assert n.value == 4
        capi.GrB_Matrix_nvals(n, A.value)
        assert n.value == 0

    def test_extract_element_no_value(self):
        A = Ref()
        capi.GrB_Matrix_new(A, GrB_INT32, 2, 2)
        x = Ref()
        assert capi.GrB_Matrix_extractElement(x, A.value, 0, 0) == GrB_NO_VALUE
        capi.GrB_Matrix_setElement(A.value, 7, 0, 0)
        assert capi.GrB_Matrix_extractElement(x, A.value, 0, 0) == GrB_SUCCESS
        assert x.value == 7

    def test_extract_tuples_out_params(self):
        A = Ref()
        capi.GrB_Matrix_new(A, GrB_INT64, 2, 2)
        capi.GrB_Matrix_build(A.value, [0, 1], [1, 0], [5, 6])
        I, J, X = Ref(), Ref(), Ref()
        assert capi.GrB_Matrix_extractTuples(I, J, X, A.value) == GrB_SUCCESS
        assert I.value.tolist() == [0, 1]
        assert J.value.tolist() == [1, 0]
        assert X.value.tolist() == [5, 6]

    def test_vector_round_trip(self):
        v = Ref()
        capi.GrB_Vector_new(v, GrB_INT64, 5)
        capi.GrB_Vector_setElement(v.value, 9, 2)
        sz, nv, x = Ref(), Ref(), Ref()
        capi.GrB_Vector_size(sz, v.value)
        capi.GrB_Vector_nvals(nv, v.value)
        capi.GrB_Vector_extractElement(x, v.value, 2)
        assert (sz.value, nv.value, x.value) == (5, 1, 9)

    def test_scalar(self):
        s = Ref()
        capi.GrB_Scalar_new(s, GrB_INT64)
        x = Ref()
        assert capi.GrB_Scalar_extractElement(x, s.value) == GrB_NO_VALUE
        capi.GrB_Scalar_setElement(s.value, 3)
        assert capi.GrB_Scalar_extractElement(x, s.value) == GrB_SUCCESS
        assert x.value == 3


class TestAlgebraConstruction:
    def test_monoid_semiring_fig3(self):
        m = Ref()
        assert (
            capi.GrB_Monoid_new(m, GrB_INT32, binary.PLUS[GrB_INT32], 0)
            == GrB_SUCCESS
        )
        s = Ref()
        assert (
            capi.GrB_Semiring_new(s, m.value, binary.TIMES[GrB_INT32])
            == GrB_SUCCESS
        )
        assert isinstance(s.value, grb.Semiring)

    def test_monoid_domain_checked(self):
        m = Ref()
        info = capi.GrB_Monoid_new(m, GrB_INT64, binary.PLUS[GrB_INT32], 0)
        assert info == grb.Info.DOMAIN_MISMATCH

    def test_monoid_bad_identity(self):
        m = Ref()
        info = capi.GrB_Monoid_new(m, GrB_INT32, binary.PLUS[GrB_INT32], 1)
        assert info == grb.Info.INVALID_VALUE

    def test_user_ops(self):
        u, b = Ref(), Ref()
        assert (
            capi.GrB_UnaryOp_new(u, lambda x: x * 2, GrB_INT64, GrB_INT64)
            == GrB_SUCCESS
        )
        assert (
            capi.GrB_BinaryOp_new(
                b, lambda x, y: x - y, GrB_INT64, GrB_INT64, GrB_INT64
            )
            == GrB_SUCCESS
        )
        assert u.value(21) == 42

    def test_type_new(self):
        t = Ref()
        assert capi.GrB_Type_new(t, "FS", frozenset) == GrB_SUCCESS
        assert t.value.is_udt


class TestOperations:
    def test_mxm_success_and_errors(self):
        A = grb.Matrix.from_dense(GrB_INT64, [[1, 2], [3, 4]])
        C = Ref()
        capi.GrB_Matrix_new(C, GrB_INT64, 2, 2)
        s = grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT64")
        assert (
            capi.GrB_mxm(C.value, GrB_NULL, GrB_NULL, s, A, A, GrB_NULL)
            == GrB_SUCCESS
        )
        assert (C.value.to_dense(0) == A.to_dense(0) @ A.to_dense(0)).all()
        bad = grb.Matrix(GrB_INT64, 3, 3)
        assert (
            capi.GrB_mxm(C.value, GrB_NULL, GrB_NULL, s, A, bad, GrB_NULL)
            == grb.Info.DIMENSION_MISMATCH
        )

    def test_reduce_with_out_param(self):
        A = grb.Matrix.from_dense(GrB_INT64, [[1, 2], [3, 4]])
        val = Ref(0)
        assert (
            capi.GrB_Matrix_reduce(
                val, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A
            )
            == GrB_SUCCESS
        )
        assert val.value == 10

    def test_reduce_with_accum_init(self):
        A = grb.Matrix.from_dense(GrB_INT64, [[1, 2], [3, 4]])
        val = Ref(100)
        capi.GrB_Matrix_reduce(val, binary.PLUS[GrB_INT64], grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert val.value == 110

    def test_free_and_free_all(self):
        A = Ref()
        capi.GrB_Matrix_new(A, GrB_INT32, 2, 2)
        m = grb.monoid("GrB_PLUS_MONOID_INT32")
        assert capi.GrB_free_all(A.value, m) == GrB_SUCCESS
        n = Ref()
        assert capi.GrB_Matrix_nrows(n, A.value) == grb.Info.UNINITIALIZED_OBJECT

    def test_wait_and_error(self):
        capi.GrB_init(capi.GrB_NONBLOCKING)
        A = grb.Matrix.from_dense(GrB_INT64, [[1]])
        C = Ref()
        capi.GrB_Matrix_new(C, GrB_INT64, 1, 1)

        def boom(x, y):
            raise grb.info.OutOfMemory("sim")

        bad = Ref()
        capi.GrB_BinaryOp_new(bad, boom, GrB_INT64, GrB_INT64, GrB_INT64)
        assert (
            capi.GrB_eWiseMult(
                C.value, GrB_NULL, GrB_NULL, bad.value, A, A, GrB_NULL
            )
            == GrB_SUCCESS
        )  # nonblocking: defers
        assert capi.GrB_wait() == grb.Info.OUT_OF_MEMORY
        assert "OUT_OF_MEMORY" in capi.GrB_error()


class TestFig3EndToEnd:
    def test_c_style_bc_matches_baseline(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bc_c_style",
            Path(__file__).resolve().parents[1] / "examples" / "bc_c_style.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        from repro.algorithms import brandes_baseline
        from repro.io import erdos_renyi

        A = erdos_renyi(40, 160, seed=9, domain=GrB_INT32)
        s = np.arange(10)
        delta = Ref()
        assert mod.BC_update(delta, A, s, len(s)) == GrB_SUCCESS
        want = brandes_baseline(A, sources=s)
        assert np.allclose(delta.value.to_dense(0.0), want, atol=1e-4)
