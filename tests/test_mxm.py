"""``GrB_mxm`` (Fig. 2): semantics, descriptor variants, masks,
accumulators, and every documented error condition."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary

from tests.conftest import random_matrix


def dense_mxm(Ad, Bd, add=np.add, mul=np.multiply, zero=0):
    """Dense oracle with explicit implied zero (for plus_times only)."""
    return Ad @ Bd


class TestBasicProduct:
    def test_small_known_product(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [0, 3]])
        B = grb.Matrix.from_dense(grb.INT64, [[4, 0], [5, 6]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert (C.to_dense(0) == np.array([[14, 12], [15, 18]])).all()

    def test_random_vs_numpy(self, rng):
        for _ in range(5):
            m, k, n = rng.integers(1, 12, 3)
            A = random_matrix(rng, m, k, 0.4)
            B = random_matrix(rng, k, n, 0.4)
            C = grb.Matrix(grb.INT64, m, n)
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
            expect = A.to_dense(0) @ B.to_dense(0)
            assert (C.to_dense(0) == expect).all()

    def test_result_pattern_excludes_structural_zeros_only(self):
        # a computed 0 (e.g. 1*2 + (-1)*2) IS stored: no implied zeros
        A = grb.Matrix.from_dense(grb.INT64, [[1, -1]])
        B = grb.Matrix.from_dense(grb.INT64, [[2], [2]])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert C.nvals() == 1
        assert C.extract_element(0, 0) == 0

    def test_empty_inputs_give_empty_result(self):
        A = grb.Matrix(grb.INT64, 3, 3)
        B = grb.Matrix(grb.INT64, 3, 3)
        C = grb.Matrix(grb.INT64, 3, 3)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert C.nvals() == 0

    def test_no_mask_overwrites_old_content(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 0], [0, 1]])
        C = grb.Matrix.from_dense(grb.INT64, [[9, 9], [9, 9]])
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert (C.to_dense(0) == np.eye(2, dtype=int)).all()

    def test_output_aliases_input(self):
        # Fig. 3 line 43 does mxm(&frontier, ..., A, frontier, ...)
        A = grb.Matrix.from_dense(grb.INT64, [[0, 1], [1, 0]])
        B = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        expect = A.to_dense(0) @ B.to_dense(0)
        grb.mxm(B, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert (B.to_dense(0) == expect).all()


class TestSemiringVariety:
    def test_min_plus_shortest_path_step(self):
        inf = np.inf
        D = np.array([[0.0, 2.0, inf], [inf, 0.0, 3.0], [inf, inf, 0.0]])
        A = grb.Matrix.from_dense(grb.FP64, D, implied_zero=inf)
        C = grb.Matrix(grb.FP64, 3, 3)
        grb.mxm(C, None, None, predefined.MIN_PLUS[grb.FP64], A, A)
        got = C.to_dense(inf)
        # min-plus square: 2-hop distances
        expect = np.full((3, 3), inf)
        for i in range(3):
            for j in range(3):
                expect[i, j] = min(D[i, k] + D[k, j] for k in range(3))
        assert (got == expect).all()

    def test_lor_land_reachability(self):
        A = grb.Matrix.from_dense(grb.BOOL, [[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        C = grb.Matrix(grb.BOOL, 3, 3)
        grb.mxm(C, None, None, predefined.LOR_LAND[grb.BOOL], A, A)
        assert {(i, j) for i, j, v in C if v} == {(0, 2)}

    def test_gf2_mxm(self):
        # xor-and: matrix product over GF(2)
        A = grb.Matrix.from_dense(grb.BOOL, [[1, 1], [0, 1]])
        C = grb.Matrix(grb.BOOL, 2, 2)
        grb.mxm(C, None, None, predefined.LXOR_LAND[grb.BOOL], A, A)
        got = C.to_dense(False).astype(int)
        expect = (np.array([[1, 1], [0, 1]]) @ np.array([[1, 1], [0, 1]])) % 2
        # xor-and result: pattern holds computed values incl. explicit 0s
        assert (got == expect).all()

    def test_plus_pair_counts_intersections(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 7], [0, 5]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_PAIR[grb.INT64], A, A)
        # pair ignores values: counts index-intersections
        assert C.extract_element(0, 1) == 2  # k=0 and k=1 both contribute 1


class TestDescriptorTransposes:
    @pytest.mark.parametrize("t0", [False, True])
    @pytest.mark.parametrize("t1", [False, True])
    def test_all_transpose_combinations(self, rng, t0, t1):
        A = random_matrix(rng, 5, 7, 0.5)
        B = random_matrix(rng, 7, 4, 0.5)
        Ad, Bd = A.to_dense(0), B.to_dense(0)
        Ax = Ad.T if t0 else Ad
        Bx = Bd.T if t1 else Bd
        if Ax.shape[1] != Bx.shape[0]:
            A2 = random_matrix(rng, 7, 5, 0.5) if t0 else A
            B2 = random_matrix(rng, 4, 7, 0.5) if t1 else B
            A, B = A2, B2
            Ad, Bd = A.to_dense(0), B.to_dense(0)
            Ax = Ad.T if t0 else Ad
            Bx = Bd.T if t1 else Bd
        d = grb.Descriptor()
        if t0:
            d.set(grb.INP0, grb.TRAN)
        if t1:
            d.set(grb.INP1, grb.TRAN)
        C = grb.Matrix(grb.INT64, Ax.shape[0], Bx.shape[1])
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B, d)
        assert (C.to_dense(0) == Ax @ Bx).all()


class TestMasks:
    @staticmethod
    def _setup(rng):
        A = random_matrix(rng, 6, 6, 0.5)
        B = random_matrix(rng, 6, 6, 0.5)
        M = random_matrix(rng, 6, 6, 0.4, domain=grb.BOOL)
        Cinit = random_matrix(rng, 6, 6, 0.3)
        product = A.to_dense(0) @ B.to_dense(0)
        return A, B, M, Cinit, product

    def test_mask_merge_mode(self, rng):
        A, B, M, Cinit, product = self._setup(rng)
        C = Cinit.dup()
        grb.mxm(C, M, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        mask_true = {(i, j) for i, j, v in M if v}
        got = {(i, j): int(v) for i, j, v in C}
        old = {(i, j): int(v) for i, j, v in Cinit}
        prod_pattern = {
            (i, j)
            for i in range(6)
            for j in range(6)
            # T's pattern: positions with at least one contributing pair
            if any(
                (i, k) in {(a, b) for a, b, _ in A}
                and (k, j) in {(a, b) for a, b, _ in B}
                for k in range(6)
            )
        }
        for pos in got:
            if pos in mask_true and pos in prod_pattern:
                assert got[pos] == product[pos]
            else:
                assert got[pos] == old[pos]
        # outside the mask, old C entries persist
        for pos, v in old.items():
            if pos not in mask_true:
                assert got[pos] == v

    def test_mask_replace_mode(self, rng):
        A, B, M, Cinit, product = self._setup(rng)
        C = Cinit.dup()
        grb.mxm(C, M, None, predefined.PLUS_TIMES[grb.INT64], A, B, grb.DESC_R)
        mask_true = {(i, j) for i, j, v in M if v}
        got = {(i, j): int(v) for i, j, v in C}
        assert set(got) <= mask_true  # everything outside mask deleted

    def test_structural_complement(self, rng):
        A, B, M, Cinit, product = self._setup(rng)
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C1, M, None, predefined.PLUS_TIMES[grb.INT64], A, B, grb.DESC_R)
        grb.mxm(C2, M, None, predefined.PLUS_TIMES[grb.INT64], A, B, grb.DESC_RSC)
        p1 = {(i, j) for i, j, _ in C1}
        p2 = {(i, j) for i, j, _ in C2}
        assert not (p1 & p2)  # disjoint
        # together they cover the unmasked product pattern
        C3 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C3, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert p1 | p2 == {(i, j) for i, j, _ in C3}

    def test_mask_value_vs_structure(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        # mask stores a false: value-mask excludes it, structure-mask includes
        M = grb.Matrix(grb.BOOL, 2, 2)
        M.set_element(0, 0, False)
        M.set_element(0, 1, True)
        Cv = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(Cv, M, None, predefined.PLUS_TIMES[grb.INT64], A, A, grb.DESC_R)
        assert {(i, j) for i, j, _ in Cv} == {(0, 1)}
        Cs = grb.Matrix(grb.INT64, 2, 2)
        d = grb.Descriptor().set(grb.MASK, grb.STRUCTURE).set(grb.OUTP, grb.REPLACE)
        grb.mxm(Cs, M, None, predefined.PLUS_TIMES[grb.INT64], A, A, d)
        assert {(i, j) for i, j, _ in Cs} == {(0, 0), (0, 1)}

    def test_int_matrix_as_mask_casts_to_bool(self):
        # Fig. 3 passes INT32 numsp as the mask: nonzero = true
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        M = grb.Matrix.from_coo(grb.INT32, 2, 2, [0, 1], [0, 1], [0, 7])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, M, None, predefined.PLUS_TIMES[grb.INT64], A, A, grb.DESC_R)
        assert {(i, j) for i, j, _ in C} == {(1, 1)}


class TestAccumulator:
    def test_accum_merges_with_old_content(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 0], [0, 1]])
        C = grb.Matrix.from_dense(grb.INT64, [[5, 3], [0, 0]])
        grb.mxm(C, None, binary.PLUS[grb.INT64], predefined.PLUS_TIMES[grb.INT64], A, A)
        # T = I; Z = C + T on intersection, union elsewhere
        assert C.to_dense(0).tolist() == [[6, 3], [0, 1]]
        assert C.nvals() == 3  # (1,0) has no element in either

    def test_accum_minus_is_order_sensitive(self):
        A = grb.Matrix.from_dense(grb.INT64, [[2]])
        C = grb.Matrix.from_dense(grb.INT64, [[10]])
        grb.mxm(C, None, binary.MINUS[grb.INT64], predefined.PLUS_TIMES[grb.INT64], A, A)
        assert C.extract_element(0, 0) == 6  # C - T = 10 - 4

    def test_accum_with_mask_keeps_outside(self, rng):
        A = random_matrix(rng, 5, 5, 0.5)
        M = random_matrix(rng, 5, 5, 0.5, domain=grb.BOOL)
        Cinit = random_matrix(rng, 5, 5, 0.6)
        C = Cinit.dup()
        grb.mxm(C, M, binary.PLUS[grb.INT64], predefined.PLUS_TIMES[grb.INT64], A, A)
        mask_true = {(i, j) for i, j, v in M if v}
        old = {(i, j): int(v) for i, j, v in Cinit}
        got = {(i, j): int(v) for i, j, v in C}
        for pos, v in old.items():
            if pos not in mask_true:
                assert got[pos] == v


class TestErrorConditions:
    """The return-value table of Fig. 2c, as exceptions."""

    def _args(self):
        A = grb.Matrix(grb.INT64, 3, 4)
        B = grb.Matrix(grb.INT64, 4, 2)
        C = grb.Matrix(grb.INT64, 3, 2)
        return C, A, B

    def test_success_path(self):
        C, A, B = self._args()
        assert grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B) is C

    def test_null_pointer(self):
        _, A, B = self._args()
        with pytest.raises(grb.NullPointer):
            grb.mxm(None, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)

    def test_uninitialized_object(self):
        C, A, B = self._args()
        A.free()
        with pytest.raises(grb.UninitializedObject):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)

    def test_dimension_mismatch_inner(self):
        C, A, B = self._args()
        bad = grb.Matrix(grb.INT64, 5, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, bad)

    def test_dimension_mismatch_output(self):
        _, A, B = self._args()
        bad_c = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxm(bad_c, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)

    def test_dimension_mismatch_mask(self):
        C, A, B = self._args()
        mask = grb.Matrix(grb.BOOL, 2, 3)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxm(C, mask, None, predefined.PLUS_TIMES[grb.INT64], A, B)

    def test_domain_mismatch_udt_input(self):
        C, A, B = self._args()
        T = grb.powerset_type()
        U = grb.Matrix(T, 4, 2)
        with pytest.raises(grb.DomainMismatch):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, U)

    def test_domain_mismatch_udt_mask(self):
        C, A, B = self._args()
        T = grb.powerset_type()
        M = grb.Matrix(T, 3, 2)
        with pytest.raises(grb.DomainMismatch):
            grb.mxm(C, M, None, predefined.PLUS_TIMES[grb.INT64], A, B)

    def test_not_a_semiring(self):
        C, A, B = self._args()
        with pytest.raises(grb.InvalidValue):
            grb.mxm(C, None, None, binary.PLUS[grb.INT64], A, B)

    def test_error_leaves_output_untouched(self):
        # section V: on API error the method makes no changes
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        A = grb.Matrix(grb.INT64, 3, 3)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert C.to_dense(0).tolist() == [[1, 2], [3, 4]]
