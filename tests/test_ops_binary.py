"""Predefined binary operators (paper Table IV and Fig. 1's F_b)."""

import numpy as np
import pytest

import repro as grb
from repro.ops import binary
from repro.types import BUILTIN_TYPES, FLOAT_TYPES, INTEGER_TYPES


class TestRegistryNames:
    @pytest.mark.parametrize(
        "name",
        [
            "GrB_PLUS_INT32",
            "GrB_TIMES_INT32",
            "GrB_PLUS_FP32",
            "GrB_TIMES_FP32",
            "GrB_MIN_UINT8",
            "GrB_MAX_FP64",
            "GrB_LAND",
            "GrB_LOR",
            "GrB_LXOR",
            "GrB_EQ_INT64",
            "GrB_FIRST_BOOL",
            "GrB_SECOND_FP64",
        ],
    )
    def test_spec_names_resolve(self, name):
        op = grb.binary_op(name)
        assert op.name == name

    def test_short_name_resolves(self):
        assert grb.binary_op("PLUS_INT32") is grb.binary_op("GrB_PLUS_INT32")

    def test_unknown_raises(self):
        with pytest.raises(grb.InvalidValue):
            grb.binary_op("GrB_FROBNICATE_INT32")

    def test_family_indexing(self):
        assert binary.PLUS[grb.INT32] is grb.binary_op("GrB_PLUS_INT32")

    def test_family_missing_domain(self):
        T = grb.type_new("T", frozenset)
        with pytest.raises(grb.DomainMismatch):
            binary.PLUS[T]

    def test_logical_families_bool_only(self):
        # core spec: GrB_LAND et al. are BOOL operators
        assert binary.LAND.d_in1 is grb.BOOL
        assert binary.LXNOR.d_out is grb.BOOL


class TestArithmetic:
    def test_plus_wraps_like_c(self):
        op = binary.PLUS[grb.INT8]
        assert op(127, 1) == np.int8(-128)

    def test_times(self):
        assert binary.TIMES[grb.INT32](6, 7) == 42
        assert binary.TIMES[grb.FP64](0.5, 8.0) == 4.0

    def test_minus_and_rminus(self):
        assert binary.MINUS[grb.INT32](10, 3) == 7
        assert binary.RMINUS[grb.INT32](10, 3) == -7

    def test_boolean_collapse(self):
        # PLUS=∨, TIMES=∧, MINUS=xor on BOOL
        assert binary.PLUS[grb.BOOL](True, True) == True  # noqa: E712
        assert binary.TIMES[grb.BOOL](True, False) == False  # noqa: E712
        assert binary.MINUS[grb.BOOL](True, True) == False  # noqa: E712

    def test_first_second_pair(self):
        assert binary.FIRST[grb.INT32](3, 9) == 3
        assert binary.SECOND[grb.INT32](3, 9) == 9
        assert binary.PAIR[grb.INT32](3, 9) == 1

    def test_min_max_integers(self):
        assert binary.MIN[grb.INT32](-5, 2) == -5
        assert binary.MAX[grb.INT32](-5, 2) == 2

    def test_min_max_float_nan_omitting(self):
        # fmin/fmax semantics: NaN loses to a number (C fminf)
        assert binary.MIN[grb.FP64](np.nan, 2.0) == 2.0
        assert binary.MAX[grb.FP64](np.nan, 2.0) == 2.0


class TestDivision:
    def test_int_div_truncates_toward_zero(self):
        op = binary.DIV[grb.INT32]
        assert op(7, 2) == 3
        assert op(-7, 2) == -3  # C trunc, not Python floor (-4)
        assert op(7, -2) == -3
        assert op(-7, -2) == 3

    def test_int_div_by_zero_is_zero(self):
        assert binary.DIV[grb.INT32](5, 0) == 0
        assert binary.RDIV[grb.INT32](0, 5) == 0

    def test_float_div_ieee(self):
        assert binary.DIV[grb.FP64](1.0, 0.0) == np.inf
        assert binary.DIV[grb.FP64](-1.0, 0.0) == -np.inf
        assert np.isnan(binary.DIV[grb.FP64](0.0, 0.0))

    def test_rdiv_swaps(self):
        assert binary.RDIV[grb.FP64](2.0, 10.0) == 5.0

    def test_unsigned_div(self):
        assert binary.DIV[grb.UINT8](200, 3) == 66


class TestComparisons:
    @pytest.mark.parametrize("t", BUILTIN_TYPES)
    def test_comparison_output_domain_is_bool(self, t):
        assert binary.EQ[t].d_out is grb.BOOL
        assert binary.LT[t].d_out is grb.BOOL

    def test_eq_ne(self):
        assert binary.EQ[grb.INT32](3, 3) == True  # noqa: E712
        assert binary.NE[grb.INT32](3, 3) == False  # noqa: E712

    def test_ordering(self):
        assert binary.LT[grb.FP64](1.0, 2.0) == True  # noqa: E712
        assert binary.GE[grb.FP64](1.0, 2.0) == False  # noqa: E712
        assert binary.LE[grb.INT8](-1, -1) == True  # noqa: E712
        assert binary.GT[grb.UINT8](5, 4) == True  # noqa: E712

    def test_bool_eq_is_associative_xnor(self):
        assert binary.EQ[grb.BOOL].associative
        assert binary.NE[grb.BOOL].associative
        assert not binary.EQ[grb.INT32].associative


class TestBitwise:
    def test_bitwise_families_integer_only(self):
        assert grb.BOOL not in binary.BOR
        assert all(t in binary.BOR for t in INTEGER_TYPES)

    def test_bor_band_bxor(self):
        assert binary.BOR[grb.UINT8](0b1100, 0b1010) == 0b1110
        assert binary.BAND[grb.UINT8](0b1100, 0b1010) == 0b1000
        assert binary.BXOR[grb.UINT8](0b1100, 0b1010) == 0b0110

    def test_bxnor(self):
        assert binary.BXNOR[grb.UINT8](0b1100, 0b1010) == 0b11111001


class TestArrayScalarAgreement:
    """The scalar fn must agree bit-for-bit with the vectorized path."""

    @pytest.mark.parametrize(
        "fam",
        [binary.PLUS, binary.MINUS, binary.TIMES, binary.DIV, binary.MIN,
         binary.MAX, binary.FIRST, binary.SECOND, binary.PAIR],
    )
    @pytest.mark.parametrize("t", [grb.INT8, grb.INT64, grb.FP32, grb.BOOL])
    def test_agreement(self, fam, t, rng):
        op = fam[t]
        if t.is_bool:
            x = rng.integers(0, 2, 20).astype(bool)
            y = rng.integers(0, 2, 20).astype(bool)
        elif t.is_integral:
            x = rng.integers(-100, 100, 20).astype(t.np_dtype)
            y = rng.integers(-100, 100, 20).astype(t.np_dtype)
        else:
            x = rng.uniform(-5, 5, 20).astype(t.np_dtype)
            y = rng.uniform(-5, 5, 20).astype(t.np_dtype)
        arr = op.apply_arrays(x, y)
        for k in range(len(x)):
            assert op(x[k], y[k]) == arr[k], (op.name, x[k], y[k])


class TestUserDefined:
    def test_binary_op_new(self):
        op = grb.binary_op_new(
            lambda a, b: a * 10 + b, grb.INT64, grb.INT64, grb.INT64,
            name="digit_append",
        )
        assert op(3, 7) == 37
        assert op.d_out is grb.INT64

    def test_user_op_array_fallback(self):
        op = grb.binary_op_new(
            lambda a, b: max(a, b) - min(a, b), grb.INT64, grb.INT64, grb.INT64
        )
        out = op.apply_arrays(np.array([5, 1]), np.array([2, 9]))
        assert out.tolist() == [3, 8]

    def test_power_ops(self):
        assert binary.POW[grb.FP64](2.0, 10.0) == 1024.0
        assert binary.POW[grb.INT32](3, 4) == 81
