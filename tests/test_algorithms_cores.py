"""Peeling algorithms (k-core, k-truss, LCC) vs networkx."""

import networkx as nx
import numpy as np
import pytest

import repro as grb
from repro.algorithms import (
    core_numbers,
    k_core,
    k_truss,
    local_clustering_coefficient,
)
from repro.io import complete_graph, from_networkx, grid_2d

@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


@pytest.fixture(scope="module")
def social():
    return nx.gnm_random_graph(40, 140, seed=31)


class TestKCore:
    def test_matches_networkx(self, social):
        A = from_networkx(social)
        g = nx.k_core(social, 3)
        got = set(int(v) for v in k_core(A, 3))
        assert got == set(g.nodes())

    def test_complete_graph_core(self):
        K = complete_graph(6)
        assert set(k_core(K, 5).tolist()) == set(range(6))
        assert len(k_core(K, 6)) == 0

    def test_grid_2core(self):
        G = grid_2d(4, 4)
        # the full grid is its own 2-core (every vertex has degree >= 2)
        assert len(k_core(G, 2)) == 16
        assert len(k_core(G, 3)) == 0  # peeling corners unravels everything

    def test_k_zero_is_everything(self, social):
        A = from_networkx(social)
        assert len(k_core(A, 0)) == 40

    def test_negative_k_rejected(self):
        with pytest.raises(grb.InvalidValue):
            k_core(complete_graph(3), -1)


class TestCoreNumbers:
    def test_matches_networkx(self, social):
        A = from_networkx(social)
        got = core_numbers(A)
        want = nx.core_number(social)
        for v in range(40):
            assert got[v] == want[v], v

    def test_star_core_numbers(self):
        from repro.io import star_graph

        S = star_graph(6)
        got = core_numbers(S)
        assert (got == 1).all()  # star is 1-degenerate


class TestKTruss:
    def test_matches_networkx(self, social):
        A = from_networkx(social)
        for k in (3, 4, 5):
            T = k_truss(A, k)
            want = nx.k_truss(social, k)
            got_edges = {(min(i, j), max(i, j)) for i, j, _ in T}
            want_edges = {(min(u, v), max(u, v)) for u, v in want.edges()}
            assert got_edges == want_edges, k

    def test_truss_values_are_supports(self):
        K = complete_graph(5)
        T = k_truss(K, 3)
        # in K5 every edge lies in 3 triangles
        assert all(int(v) == 3 for _, _, v in T)

    def test_triangle_free_graph_has_empty_3truss(self):
        G = grid_2d(4, 4)
        assert k_truss(G, 3).nvals() == 0

    def test_k2_is_whole_graph(self, social):
        A = from_networkx(social)
        assert k_truss(A, 2).nvals() == A.nvals()

    def test_invalid_k(self):
        with pytest.raises(grb.InvalidValue):
            k_truss(complete_graph(3), 1)


class TestLCC:
    def test_matches_networkx_clustering(self, social):
        A = from_networkx(social)
        got = local_clustering_coefficient(A)
        want = nx.clustering(social)
        for v in range(40):
            assert got[v] == pytest.approx(want[v], abs=1e-12), v

    def test_complete_graph_lcc_is_one(self):
        K = complete_graph(5)
        assert np.allclose(local_clustering_coefficient(K), 1.0)

    def test_low_degree_vertices_zero(self):
        from repro.io import path_graph

        P = path_graph(4, directed=False)
        assert (local_clustering_coefficient(P) == 0).all()
