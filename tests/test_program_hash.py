"""Canonical program hashing: alpha-equivalent programs share a digest,
semantically different programs never do.

The property half reuses the conformance fuzzer's generator as the
program source: over a generated corpus, consistently renaming every
temporary and swapping adjacent dataflow-independent calls must preserve
the canonical digest, while reordering *dependent* calls must change it.
The directed half hand-builds a masked/accumulated program and flips one
semantic knob at a time — operator token, dtype, shape, entries, mask
interpretation, descriptor bit, accumulator, fetch set — asserting each
flip lands in a different cache key.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import generate_corpus
from repro.fuzz.program import Call, Decl, Program
from repro.service.memo import analyze_request

_NAME_KEYS = ("a", "b", "u", "mask")


def _payload(program: Program) -> dict:
    return {
        "declare": [d.to_dict() for d in program.decls],
        "calls": [c.to_dict() for c in program.calls],
        "fetch": [d.name for d in program.decls],
    }


def _decision(program: Program):
    return analyze_request("program", _payload(program))


def _rename(program: Program, fn) -> Program:
    q = program.copy()
    for d in q.decls:
        d.name = fn(d.name)
    for c in q.calls:
        if c.out is not None:
            c.out = fn(c.out)
        for key in _NAME_KEYS:
            v = c.args.get(key)
            if isinstance(v, str) and not v.startswith("shared:"):
                c.args[key] = fn(v)
    return q


def _reads(call: Call) -> set[str]:
    out = set()
    for key in _NAME_KEYS:
        v = call.args.get(key)
        if isinstance(v, str):
            out.add(v)
    return out


def _independent(c1: Call, c2: Call) -> bool:
    """True when swapping c1/c2 cannot change any observable result."""
    if c1.kind == "wait" or c2.kind == "wait":
        return False
    if c1.out is None and c2.out is None:
        return False        # two scalar reduces: their chain is ordered
    if c1.out is not None and (c1.out == c2.out or c1.out in _reads(c2)):
        return False
    if c2.out is not None and c2.out in _reads(c1):
        return False
    return True


CORPUS = list(generate_corpus(11, 60))
CACHEABLE = [p for p in CORPUS if _decision(p).cacheable]


def test_generator_yields_enough_cacheable_programs():
    assert len(CACHEABLE) >= 10
    # and the bypasses it does produce are typed, not accidental
    for p in CORPUS:
        d = _decision(p)
        if not d.cacheable:
            assert d.reason


def test_alpha_renaming_preserves_the_digest():
    for p in CACHEABLE:
        q = _rename(p, lambda n: f"ren_{n}_z")
        dp, dq = _decision(p), _decision(q)
        assert dq.cacheable
        assert dq.digest == dp.digest, p


def test_rename_is_not_a_trivial_hash_of_nothing():
    digests = {_decision(p).digest for p in CACHEABLE}
    assert len(digests) > 1


def test_swapping_independent_adjacent_calls_preserves_the_digest():
    checked = 0
    for p in CACHEABLE:
        for i in range(len(p.calls) - 1):
            if not _independent(p.calls[i], p.calls[i + 1]):
                continue
            q = p.copy()
            q.calls[i], q.calls[i + 1] = q.calls[i + 1], q.calls[i]
            assert _decision(q).digest == _decision(p).digest, (p, i)
            checked += 1
            break
    assert checked >= 5


def test_swapping_dependent_calls_changes_the_digest():
    checked = 0
    for p in CACHEABLE:
        for i in range(len(p.calls) - 1):
            c1, c2 = p.calls[i], p.calls[i + 1]
            if c1.kind == "wait" or c2.kind == "wait":
                continue
            if c1.out is None or c1.out not in _reads(c2):
                continue    # want a true read-after-write pair
            q = p.copy()
            q.calls[i], q.calls[i + 1] = q.calls[i + 1], q.calls[i]
            dq = _decision(q)
            if not dq.cacheable:
                continue    # swap may surface a use-before-def bypass
            assert dq.digest != _decision(p).digest, (p, i)
            checked += 1
            break
    assert checked >= 3


# ---------------------------------------------------------------- directed

def _base() -> Program:
    return Program(
        decls=[
            Decl("a", "matrix", "FP64", (6, 6),
                 [[0, 1, 1.5], [2, 3, 0.5], [4, 0, 2.0]]),
            Decl("m", "matrix", "BOOL", (6, 6),
                 [[0, 0, True], [1, 1, True]]),
            Decl("t", "matrix", "FP64", (6, 6)),
        ],
        calls=[
            Call("mxm", "t", {
                "a": "a", "b": "a",
                "semiring": "GrB_PLUS_TIMES_SEMIRING_FP64",
                "mask": "m", "mask_comp": False, "mask_struct": True,
                "replace": False, "tran0": False, "tran1": False,
            }),
        ],
    )


def _mutations():
    def semiring(p):
        p.calls[0].args["semiring"] = "GrB_MIN_PLUS_SEMIRING_FP64"

    def accum(p):
        p.calls[0].args["accum"] = "GrB_PLUS_FP64"

    def mask_comp(p):
        p.calls[0].args["mask_comp"] = True

    def mask_value(p):
        p.calls[0].args["mask_struct"] = False

    def mask_dropped(p):
        del p.calls[0].args["mask"]

    def descriptor(p):
        p.calls[0].args["tran0"] = True

    def replace(p):
        p.calls[0].args["replace"] = True

    def dtype(p):
        p.decls[0].dtype = "FP32"
        p.decls[2].dtype = "FP32"

    def shape(p):
        p.decls[0].shape = (7, 7)
        p.decls[1].shape = (7, 7)
        p.decls[2].shape = (7, 7)

    def entries(p):
        p.decls[0].entries[0][2] = 99.0

    return [semiring, accum, mask_comp, mask_value, mask_dropped,
            descriptor, replace, dtype, shape, entries]


@pytest.mark.parametrize("mutate", _mutations(),
                         ids=lambda f: f.__name__)
def test_semantic_change_breaks_the_digest(mutate):
    base = _base()
    d_base = _decision(base)
    assert d_base.cacheable

    changed = _base()
    mutate(changed)
    d_changed = _decision(changed)
    assert d_changed.cacheable
    assert d_changed.digest != d_base.digest


def test_fetch_set_is_part_of_the_key():
    base = _base()
    payload = _payload(base)
    trimmed = dict(payload, fetch=["t"])
    empty = dict(payload, fetch=[])
    digests = {
        analyze_request("program", payload).digest,
        analyze_request("program", trimmed).digest,
        analyze_request("program", empty).digest,
    }
    assert len(digests) == 3


def test_udf_programs_bypass():
    p = _base()
    p.decls.append(Decl("ps", "vector", "PSET", (4,), [[0, [1, 2]]]))
    d = _decision(p)
    assert not d.cacheable
    assert d.reason == "udf"


def test_unregistered_operator_bypasses():
    p = _base()
    p.calls[0].args["semiring"] = "MY_CUSTOM_SEMIRING"
    d = _decision(p)
    assert not d.cacheable
    assert d.reason == "udf"


def test_reading_undeclared_private_names_bypasses():
    p = _base()
    p.calls[0].args["b"] = "not_declared_here"
    d = _decision(p)
    assert not d.cacheable
    assert d.reason == "private-ref"


def test_shared_reads_are_cacheable_and_name_sensitive():
    p = _base()
    p.calls[0].args["b"] = "shared:G"
    d = _decision(p)
    assert d.cacheable

    q = _base()
    q.calls[0].args["b"] = "shared:H"
    assert _decision(q).digest != d.digest
