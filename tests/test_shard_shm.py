"""Shared-memory lifecycle: refcounted leases, teardown, and leak-proofing.

The contract under test is the one the sharded backend's crash story
rests on: every segment is registry-tracked from birth, ``/dev/shm``
holds nothing once :func:`repro.parallel.shutdown_pools` runs — after a
clean drain, after a worker SIGKILL mid-level, and at plain interpreter
exit via the atexit hook.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro as grb
from repro import context, parallel
from repro.info import Panic
from repro.shard.shm import NAME_PREFIX, registry

from tests.conftest import random_matrix

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _shm_path(name: str) -> str:
    return f"/dev/shm/{name}"


def _leaked() -> list[str]:
    return glob.glob(_shm_path(f"{NAME_PREFIX}*"))


def _enable_processes() -> None:
    parallel.set_backend("processes")
    parallel.set_parallel_threshold(0)
    parallel.set_shard_workers(2)
    parallel.set_shard_grid((2, 2))


def test_registry_lease_release_discard():
    seg = registry.create(1024)
    name = seg.name
    assert name.startswith(NAME_PREFIX)
    assert name in registry.live_names()
    assert os.path.exists(_shm_path(name))

    registry.lease(name)            # two leases out (create + this)
    registry.discard(name)          # doomed, but still leased
    assert os.path.exists(_shm_path(name))
    registry.release(name)          # one lease left
    assert os.path.exists(_shm_path(name))
    registry.release(name)          # last lease drops -> unlink
    assert not os.path.exists(_shm_path(name))
    assert name not in registry.live_names()


def test_discard_without_leases_unlinks_now():
    seg = registry.create(256)
    registry.release(seg.name)      # drop the create lease; not yet doomed
    assert os.path.exists(_shm_path(seg.name))
    registry.discard(seg.name)
    assert not os.path.exists(_shm_path(seg.name))


def test_unlink_all_ignores_refcounts():
    names = [registry.create(64).name for _ in range(3)]
    for name in names:
        registry.lease(name)
    registry.unlink_all()
    for name in names:
        assert not os.path.exists(_shm_path(name))
    assert registry.live_names() == []


def test_lease_unknown_name_raises():
    with pytest.raises(KeyError):
        registry.lease(f"{NAME_PREFIX}nonexistent")


def test_no_dev_shm_leak_after_drain_and_teardown(rng):
    grb.init(grb.Mode.NONBLOCKING)
    _enable_processes()
    A = random_matrix(rng, 32, 32, 0.3)
    B = random_matrix(rng, 32, 32, 0.3)
    C = grb.Matrix(grb.INT64, 32, 32)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    grb.wait()
    assert C.nvals() > 0
    # the publication cache holds live segments between drains
    assert registry.stats()["live"] > 0
    parallel.shutdown_pools()
    assert registry.stats()["live"] == 0
    assert _leaked() == []


def test_no_dev_shm_leak_after_worker_crash(rng):
    from repro.shard.pool import get_pool

    grb.init(grb.Mode.NONBLOCKING)
    _enable_processes()
    A = random_matrix(rng, 32, 32, 0.3)
    B = random_matrix(rng, 32, 32, 0.3)
    C = grb.Matrix(grb.INT64, 32, 32)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    grb.wait()                       # healthy drain first

    pool = get_pool()
    os.kill(pool.pids[0], signal.SIGKILL)
    time.sleep(0.2)

    D = grb.Matrix(grb.INT64, 32, 32)
    grb.mxm(D, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    with pytest.raises(Panic):
        grb.wait()                   # aborted drain: pool died mid-level
    assert pool.dead

    parallel.shutdown_pools()
    assert registry.stats()["live"] == 0
    assert _leaked() == []


def test_atexit_unlinks_segments_of_exiting_process(tmp_path):
    """A process that creates segments and just exits leaks nothing:
    ``shutdown_pools`` is registered with atexit on repro.parallel import."""
    script = tmp_path / "shm_exit.py"
    script.write_text(
        "import sys\n"
        f"sys.path.insert(0, {_SRC!r})\n"
        "import repro.parallel  # registers the atexit teardown\n"
        "from repro.shard.shm import registry\n"
        "seg = registry.create(4096)\n"
        "print(seg.name, flush=True)\n"
    )
    out = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=60, check=True,
    )
    name = out.stdout.strip().splitlines()[-1]
    assert name.startswith("rshard")
    assert not os.path.exists(_shm_path(name))
