"""Error model (paper section V): GrB_Info codes, the two error classes,
and the C-style last-error string."""

import pytest

from repro import info


class TestInfoEnum:
    def test_success_is_zero(self):
        assert int(info.Info.SUCCESS) == 0

    def test_no_value_is_not_an_error_class(self):
        assert not info.Info.NO_VALUE.is_api_error
        assert not info.Info.NO_VALUE.is_execution_error

    @pytest.mark.parametrize(
        "code",
        [
            info.Info.UNINITIALIZED_OBJECT,
            info.Info.NULL_POINTER,
            info.Info.INVALID_VALUE,
            info.Info.INVALID_INDEX,
            info.Info.DOMAIN_MISMATCH,
            info.Info.DIMENSION_MISMATCH,
            info.Info.OUTPUT_NOT_EMPTY,
            info.Info.NOT_IMPLEMENTED,
        ],
    )
    def test_api_error_codes(self, code):
        assert code.is_api_error
        assert not code.is_execution_error

    @pytest.mark.parametrize(
        "code",
        [
            info.Info.PANIC,
            info.Info.OUT_OF_MEMORY,
            info.Info.INSUFFICIENT_SPACE,
            info.Info.INVALID_OBJECT,
            info.Info.INDEX_OUT_OF_BOUNDS,
            info.Info.EMPTY_OBJECT,
        ],
    )
    def test_execution_error_codes(self, code):
        assert code.is_execution_error
        assert not code.is_api_error


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "cls,code",
        [
            (info.UninitializedObject, info.Info.UNINITIALIZED_OBJECT),
            (info.NullPointer, info.Info.NULL_POINTER),
            (info.InvalidValue, info.Info.INVALID_VALUE),
            (info.InvalidIndex, info.Info.INVALID_INDEX),
            (info.DomainMismatch, info.Info.DOMAIN_MISMATCH),
            (info.DimensionMismatch, info.Info.DIMENSION_MISMATCH),
            (info.OutputNotEmpty, info.Info.OUTPUT_NOT_EMPTY),
            (info.NotImplementedInSpec, info.Info.NOT_IMPLEMENTED),
        ],
    )
    def test_api_errors_carry_code(self, cls, code):
        exc = cls("msg")
        assert exc.info is code
        assert isinstance(exc, info.ApiError)
        assert isinstance(exc, info.GraphBLASError)

    @pytest.mark.parametrize(
        "cls,code",
        [
            (info.OutOfMemory, info.Info.OUT_OF_MEMORY),
            (info.InsufficientSpace, info.Info.INSUFFICIENT_SPACE),
            (info.InvalidObject, info.Info.INVALID_OBJECT),
            (info.IndexOutOfBounds, info.Info.INDEX_OUT_OF_BOUNDS),
            (info.EmptyObject, info.Info.EMPTY_OBJECT),
            (info.Panic, info.Info.PANIC),
        ],
    )
    def test_execution_errors_carry_code(self, cls, code):
        exc = cls("msg")
        assert exc.info is code
        assert isinstance(exc, info.ExecutionError)

    def test_api_and_execution_are_disjoint(self):
        assert not issubclass(info.ApiError, info.ExecutionError)
        assert not issubclass(info.ExecutionError, info.ApiError)

    def test_no_value_is_not_graphblas_error(self):
        # GrB_NO_VALUE is informational, not an error condition
        assert not issubclass(info.NoValue, info.GraphBLASError)
        assert info.NoValue("x").info is info.Info.NO_VALUE


class TestLastError:
    def test_error_string_records_last_raise(self):
        info.clear_last_error()
        assert info.error() == ""
        info.DimensionMismatch("bad dims")
        assert "DIMENSION_MISMATCH" in info.error()
        assert "bad dims" in info.error()

    def test_error_string_overwritten_by_newer(self):
        info.DimensionMismatch("first")
        info.DomainMismatch("second")
        assert "second" in info.error()
        assert "first" not in info.error()

    def test_info_of_foreign_exception_is_panic(self):
        assert info.info_of(ValueError("x")) is info.Info.PANIC

    def test_info_of_graphblas_error(self):
        assert info.info_of(info.DomainMismatch("x")) is info.Info.DOMAIN_MISMATCH
