"""Auto-generated fuzz regression (uint_reduce_domain_overflow).

Shrunk witness of an oracle divergence found by the conformance fuzzer
(seed fingerprint: [0, 6]).  Original failure:

    [blocking] scalar #0: reference=4294967293 optimized=12884901885
    [nb-planner] scalar #0: reference=4294967293 optimized=12884901885
    [nb-planner-off] scalar #0: reference=4294967293 optimized=12884901885
    [nb-no-deadop] scalar #0: reference=4294967293 optimized=12884901885
    [nb-no-fusion] scalar #0: reference=4294967293 optimized=12884901885
    [nb-no-cse] scalar #0: reference=4294967293 optimized=12884901885
    [nb-no-parallel] scalar #0: reference=4294967293 optimized=12884901885
    [nb-passes-off] scalar #0: reference=4294967293 optimized=12884901885

Replay by hand with::

    PYTHONPATH=src python -m repro.fuzz --replay test_uint_reduce_domain_overflow.py
"""

from repro.fuzz.executor import run_differential
from repro.fuzz.program import Program

PROGRAM_JSON = r"""
{
  "seed": [
    0,
    6
  ],
  "decls": [
    {
      "name": "M14",
      "kind": "matrix",
      "dtype": "INT16",
      "shape": [
        2,
        5
      ],
      "entries": [
        [
          1,
          0,
          -1
        ],
        [
          1,
          2,
          3
        ]
      ]
    },
    {
      "name": "V15",
      "kind": "vector",
      "dtype": "UINT32",
      "shape": [
        5
      ],
      "entries": []
    }
  ],
  "calls": [
    {
      "kind": "reduce",
      "out": "V15",
      "args": {
        "a": "M14",
        "monoid": "GrB_MAX_MONOID_INT16",
        "tran0": true,
        "mask_comp": false,
        "mask_struct": false,
        "replace": false
      }
    },
    {
      "kind": "reduce_scalar",
      "out": null,
      "args": {
        "a": "V15",
        "monoid": "GrB_TIMES_MONOID_UINT32"
      }
    }
  ]
}
"""


def test_uint_reduce_domain_overflow():
    report = run_differential(Program.from_json(PROGRAM_JSON))
    assert report is None, f"divergence resurfaced:\n{report}"
