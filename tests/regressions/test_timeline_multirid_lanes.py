"""Regression: spans stamped with multiple request ids must render on
*every* contributing request's timeline lane.

``timeline_html`` used to recognise only the planner's list-shaped
``request_ids`` attr; bare-string and set-shaped stamps were dropped, and
a cross-request CSE'd kernel therefore appeared on a single (arbitrary)
lane — hiding exactly the sharing the timeline exists to show.
"""

from __future__ import annotations

from repro.obs.export import _request_ids_of, timeline_html
from repro.obs.spans import Span
from repro.obs.tracing import TraceContext
from repro.service.service import Service, ServiceConfig

ENTRIES = [[0, 1, 1.0], [1, 2, 2.0], [2, 0, 3.0], [0, 3, 0.5], [3, 1, 1.5]]
SEMIRING = "GrB_PLUS_TIMES_SEMIRING_FP64"


def _span(sid, label, kind, rids, t0=0.0, t1=0.001):
    attrs = {} if rids is None else {"request_ids": rids}
    return Span(sid=sid, parent=None, label=label, kind=kind,
                t0=t0, t1=t1, thread="main", tid=1, attrs=attrs)


def _lanes(html: str) -> dict[str, str]:
    """request id -> the inner HTML of that request's lane."""
    out = {}
    for chunk in html.split('<div class="lane">')[1:]:
        chunk = chunk.split("<h2>")[0]  # last lane runs into the flamegraph
        if 'class="name">request ' in chunk:
            rid = chunk.split('class="name">request ')[1].split("<")[0]
            out[rid.split(" ")[0]] = chunk
    return out


class TestRequestIdShapes:
    def test_every_stamp_shape_is_honoured(self):
        assert _request_ids_of(_span(1, "a", "op", ["r1", "r2"])) == ("r1", "r2")
        assert _request_ids_of(_span(2, "b", "op", ("r1",))) == ("r1",)
        assert _request_ids_of(_span(3, "c", "op", "r1")) == ("r1",)
        assert _request_ids_of(_span(4, "d", "op", {"r2", "r1"})) == ("r1", "r2")
        assert _request_ids_of(_span(5, "e", "op", ["r1", "r1", "r2"])) == (
            "r1", "r2",
        )
        assert _request_ids_of(_span(6, "f", "op", None)) == ()
        assert _request_ids_of(_span(7, "g", "op", 42)) == ()

    def test_multi_rid_span_lands_on_every_lane(self):
        spans = [
            _span(1, "only-a", "op", ["rq-a"], t0=0.0, t1=0.001),
            _span(2, "shared", "op", ["rq-a", "rq-b"], t0=0.001, t1=0.002),
            _span(3, "stringy", "op", "rq-b", t0=0.002, t1=0.003),
            _span(4, "setty", "op", {"rq-b", "rq-a"}, t0=0.003, t1=0.004),
        ]
        lanes = _lanes(timeline_html(spans))
        assert set(lanes) == {"rq-a", "rq-b"}
        for rid in ("rq-a", "rq-b"):
            assert "shared" in lanes[rid]
            assert "setty" in lanes[rid]
        assert "only-a" in lanes["rq-a"] and "only-a" not in lanes["rq-b"]
        assert "stringy" in lanes["rq-b"] and "stringy" not in lanes["rq-a"]


class TestPinnedTwoRequestFusion:
    def test_shared_kernel_renders_on_both_lanes(self):
        """The pinned fused+CSE batch (see test_diag_explain): the CSE'd
        mxm survives once but must be drawn on both request lanes."""
        from repro import obs

        svc = Service(ServiceConfig(workers=1, autostart=False))
        try:
            sess = svc.open_session("tl")
            f0 = svc.submit(sess, "define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [8, 8], "entries": ENTRIES,
            })
            futs = []
            for rid in ("rq-a", "rq-b"):
                futs.append(svc.submit(sess, "program", {
                    "declare": [
                        {"name": f"t_{rid}", "kind": "matrix",
                         "dtype": "FP64", "shape": [8, 8]},
                        {"name": f"s_{rid}", "kind": "matrix",
                         "dtype": "FP64", "shape": [8, 8]},
                    ],
                    "calls": [
                        {"kind": "mxm", "out": f"t_{rid}",
                         "args": {"a": "g", "b": "g", "semiring": SEMIRING}},
                        {"kind": "apply", "out": f"t_{rid}",
                         "args": {"a": f"t_{rid}",
                                  "unary": "GrB_AINV_FP64"}},
                        {"kind": "mxm", "out": f"s_{rid}",
                         "args": {"a": "g", "b": "g", "semiring": SEMIRING}},
                    ],
                }, trace=TraceContext.mint(request_id=rid)))
            with obs.capture() as cap:
                svc.start()
                f0.result(timeout=30)
                for f in futs:
                    f.result(timeout=30)
        finally:
            svc.shutdown()

        shared = [
            sp for sp in cap.spans
            if set(_request_ids_of(sp)) == {"rq-a", "rq-b"}
            and sp.kind == "op"
        ]
        assert shared, "batch did not CSE across the two requests"

        lanes = _lanes(timeline_html(cap.spans))
        assert {"rq-a", "rq-b"} <= set(lanes)
        for rid in ("rq-a", "rq-b"):
            assert (
                "requests=rq-a,rq-b" in lanes[rid]
                or "requests=rq-b,rq-a" in lanes[rid]
            ), f"shared kernel missing from lane {rid}"
            # each request also keeps its own fused chain on its lane
            assert 'class="seg fused"' in lanes[rid]
