"""End-to-end integration: a full analytics pipeline over one graph, with
cross-consistency checks between independent algorithms.

This is the downstream-user smoke test: file I/O → structure metrics →
traversal → centrality, all on the same data, asserting the *relations*
different algorithms must satisfy rather than re-deriving each oracle.
"""

import io

import numpy as np
import pytest

import repro as grb
from repro import algorithms as alg
from repro.io import read_edgelist, rmat, serialize, deserialize, write_edgelist
from repro.utils import is_symmetric, matrices_equal
from repro.validation import check


@pytest.fixture(scope="module")
def pipeline_graph():
    """An RMAT digraph shipped through edge-list text, as a user would."""
    G = rmat(7, 6, seed=33)  # 128 vertices
    buf = io.StringIO()
    write_edgelist(buf, G, write_weights=False)
    A = read_edgelist(io.StringIO(buf.getvalue()), n=128)
    return A


@pytest.fixture(scope="module")
def sym(pipeline_graph):
    U = grb.Matrix(grb.BOOL, 128, 128)
    grb.ewise_add(U, None, None, grb.LOR, pipeline_graph, pipeline_graph, grb.DESC_T1)
    S = grb.Matrix(grb.BOOL, 128, 128)
    grb.select(S, None, None, grb.ops.index_unary.OFFDIAG, U, 0)
    return S


class TestPipelineConsistency:
    def test_io_round_trip_preserved_graph(self, pipeline_graph):
        B = deserialize(serialize(pipeline_graph))
        assert matrices_equal(pipeline_graph, B)
        check(B)

    def test_symmetrization_is_symmetric(self, sym):
        assert is_symmetric(sym)
        check(sym)

    def test_bfs_levels_agree_with_apsp_row(self, sym):
        # unweighted shortest hops from vertex 0 two independent ways
        lv = alg.bfs_levels(sym, 0)
        D = alg.apsp(sym)
        got = {i: int(v) for i, v in lv}
        for j in range(128):
            if j in got:
                assert D[0, j] == got[j]
            else:
                assert D[0, j] == np.inf

    def test_triangle_count_consistent_with_lcc(self, sym):
        tri_total = alg.triangle_count(sym)
        lcc = alg.local_clustering_coefficient(sym)
        deg = np.diff(sym.csr().indptr).astype(float)
        per_vertex = lcc * deg * (deg - 1.0) / 2.0
        assert round(per_vertex.sum()) == 3 * tri_total

    def test_components_refine_scc(self, sym):
        # on a symmetric graph, SCCs equal weak components
        wcc = alg.connected_components(sym)
        scc = alg.strongly_connected_components(sym)
        assert (wcc == scc).all()

    def test_core_numbers_bound_truss_membership(self, sym):
        cores = alg.core_numbers(sym)
        T = alg.k_truss(sym, 4)
        # every 4-truss member has core number >= 3 (k-truss ⊆ (k-1)-core)
        members = {int(i) for i, _, _ in T} | {int(j) for _, j, _ in T}
        for v in members:
            assert cores[v] >= 3

    def test_bc_zero_on_leaves(self, sym):
        deg = np.diff(sym.csr().indptr)
        bc = alg.betweenness_centrality(sym, batch_size=32)
        # degree-1 vertices of a symmetric graph carry no shortest paths
        for v in np.nonzero(deg == 1)[0]:
            assert bc[v] == pytest.approx(0.0, abs=1e-5)

    def test_mis_and_coloring_consistent(self, sym):
        colors = alg.greedy_coloring(sym, seed=4)
        # each color class is an independent set; class 0 is maximal
        rows, cols, _ = sym.extract_tuples()
        for i, j in zip(rows, cols):
            assert colors[i] != colors[j]

    def test_pagerank_mass_on_components(self, sym):
        pr = alg.pagerank(sym)
        assert pr.sum() == pytest.approx(1.0)
        assert (pr > 0).all()  # symmetric graph: every vertex reachable mass

    def test_everything_still_valid(self, pipeline_graph, sym):
        check(pipeline_graph)
        check(sym)


class TestPipelineNonblocking:
    def test_same_pipeline_in_nonblocking_mode(self):
        grb.init(grb.Mode.NONBLOCKING)
        G = rmat(6, 6, seed=34)
        U = grb.Matrix(grb.BOOL, 64, 64)
        grb.ewise_add(U, None, None, grb.LOR, G, G, grb.DESC_T1)
        tri = alg.triangle_count(U)
        lv = alg.bfs_levels(U, 0)
        cores = alg.core_numbers(U)
        assert tri >= 0 and lv.nvals() >= 1 and len(cores) == 64
        grb.wait()
        check(U)
