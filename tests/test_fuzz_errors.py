"""Error-model conformance under fuzzing (ISSUE satellite): API errors —
dimension mismatches, bad indices, domain violations — must raise
identically (same exception class, same ``GrB_Info`` code) at call time
in blocking and nonblocking mode.  The paper's section V makes API
errors synchronous regardless of mode; these tests drive that contract
with generated invalid programs rather than hand-picked ones."""

import pytest

from repro import info
from repro.fuzz import ERROR_KINDS, check_error_conformance, generate_error_program
from repro.fuzz.executor import _error_outcome


@pytest.mark.parametrize("index", range(3 * len(ERROR_KINDS)))
def test_error_conformance(index):
    program, kind = generate_error_program(0, index)
    complaint = check_error_conformance(program)
    assert complaint is None, f"{kind}: {complaint}"


def test_every_error_kind_is_generated():
    kinds = {generate_error_program(0, i)[1] for i in range(2 * len(ERROR_KINDS))}
    assert kinds == set(ERROR_KINDS)


@pytest.mark.parametrize("index", range(len(ERROR_KINDS)))
def test_errors_carry_real_info_codes(index):
    """The invalid call must raise at call time in both modes with a
    genuine GrB_Info code.  Bad-index programs surface the spec's
    ``GrB_INDEX_OUT_OF_BOUNDS`` *execution* error; everything else must
    be an API error."""
    program, kind = generate_error_program(0, index)
    for nonblocking in (False, True):
        cls_name, code, complaint = _error_outcome(program, nonblocking)
        assert complaint is None, f"{kind}: {complaint}"
        cls = getattr(info, cls_name)
        assert issubclass(cls, info.GraphBLASError)
        if kind.startswith("bad_index"):
            assert cls is info.IndexOutOfBounds
        else:
            assert issubclass(cls, info.ApiError), (
                f"{kind} raised {cls_name}, which is not an ApiError"
            )
        assert isinstance(code, info.Info)


def test_error_programs_are_deterministic():
    a, ka = generate_error_program(9, 4)
    b, kb = generate_error_program(9, 4)
    assert ka == kb and a.to_json() == b.to_json()
