"""The invariant checker, plus a randomized chain that must keep every
invariant intact after arbitrary operation pipelines."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro.validation import check

from tests.conftest import random_matrix, random_vector

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestCheckAcceptsHealthyObjects:
    def test_matrix(self, rng):
        check(random_matrix(rng, 6, 9, 0.4))

    def test_empty_matrix(self):
        check(grb.Matrix(grb.FP32, 3, 3))

    def test_vector(self, rng):
        check(random_vector(rng, 12, 0.5))

    def test_scalar(self):
        check(grb.Scalar.from_value(grb.INT32, 5))
        check(grb.Scalar(grb.INT32))

    def test_udt_matrix(self):
        T = grb.powerset_type()
        M = grb.Matrix(T, 2, 2)
        M.set_element(0, 1, frozenset({1}))
        check(M)

    def test_unknown_type_rejected(self):
        with pytest.raises(grb.InvalidValue):
            check("not a collection")


class TestCheckCatchesCorruption:
    def test_unsorted_keys(self, rng):
        A = random_matrix(rng, 4, 4, 0.8)
        A._keys = A._keys[::-1].copy()
        A._csr = None
        A._csc = None
        with pytest.raises(grb.InvalidObject, match="sorted"):
            check(A)

    def test_out_of_range_key(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0], [0], [1])
        A._keys = np.array([99], dtype=np.int64)
        A._csr = None
        A._csc = None
        with pytest.raises(grb.InvalidObject, match="range"):
            check(A)

    def test_length_mismatch(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0, 1], [0, 1], [1, 2])
        A._values = A._values[:1]
        A._csr = None
        A._csc = None
        with pytest.raises(grb.InvalidObject, match="length"):
            check(A)

    def test_wrong_value_dtype(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0], [0], [1])
        A._values = A._values.astype(np.float32)
        A._csr = None
        A._csc = None
        with pytest.raises(grb.InvalidObject, match="dtype"):
            check(A)

    def test_udt_foreign_value(self):
        T = grb.powerset_type()
        v = grb.Vector(T, 2)
        v.build([0], [frozenset({1})])
        v._values[0] = {1}  # a set, not a frozenset
        with pytest.raises(grb.InvalidObject, match="frozenset"):
            check(v)


class TestInvariantsSurviveOperationChains:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_random_chain_keeps_invariants(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        A = random_matrix(rng, 6, 6, 0.4)
        B = random_matrix(rng, 6, 6, 0.4)
        C = random_matrix(rng, 6, 6, 0.3)
        M = random_matrix(rng, 6, 6, 0.3, domain=grb.BOOL)
        s = grb.PLUS_TIMES[grb.INT64]
        steps = data.draw(
            st.lists(
                st.sampled_from(
                    ["mxm", "add", "mult", "apply", "tran", "sel", "assign"]
                ),
                min_size=1,
                max_size=6,
            )
        )
        for step in steps:
            if step == "mxm":
                grb.mxm(C, M, None, s, A, B, grb.DESC_R)
            elif step == "add":
                grb.ewise_add(C, None, grb.PLUS[grb.INT64], grb.PLUS[grb.INT64], A, B)
            elif step == "mult":
                grb.ewise_mult(C, M, None, grb.TIMES[grb.INT64], C, B)
            elif step == "apply":
                grb.apply(C, None, None, grb.AINV[grb.INT64], C)
            elif step == "tran":
                grb.transpose(C, None, None, C)
            elif step == "sel":
                grb.select(C, None, None, grb.TRIL, C, 0)
            elif step == "assign":
                grb.matrix_assign_scalar(C, M, None, 7, [1, 3], [0, 2])
            check(C)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_nonblocking_chains_keep_invariants(self, data):
        from repro import context

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        A = random_matrix(rng, 5, 5, 0.5)
        C = grb.Matrix(grb.INT64, 5, 5)
        n_ops = data.draw(st.integers(1, 5))
        for _ in range(n_ops):
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.ewise_add(C, None, None, grb.PLUS[grb.INT64], C, A)
        grb.wait()
        check(C)
        check(A)
