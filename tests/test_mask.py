"""Mask semantics in isolation (paper section III-C)."""

import numpy as np
import pytest

import repro as grb
from repro.containers.mask import MaskView, build_mask_view


class TestMaskView:
    def test_value_mask_keeps_true_only(self):
        m = grb.Vector.from_coo(grb.INT32, 6, [0, 2, 4], [0, 5, -1])
        view = build_mask_view(m, complemented=False, structural=False)
        # stored-and-true: index 0 stores 0 (false)
        assert view.pattern.tolist() == [2, 4]

    def test_structural_mask_keeps_all_stored(self):
        m = grb.Vector.from_coo(grb.INT32, 6, [0, 2, 4], [0, 5, -1])
        view = build_mask_view(m, complemented=False, structural=True)
        assert view.pattern.tolist() == [0, 2, 4]

    def test_complement_is_lazy(self):
        m = grb.Vector.from_coo(grb.BOOL, 10**6, [3], [True])
        view = build_mask_view(m, complemented=True, structural=False)
        # the million-element complement is never materialized
        assert len(view.pattern) == 1
        keys = np.array([2, 3, 4], dtype=np.int64)
        assert view.allows(keys).tolist() == [True, False, True]

    def test_complement_definition(self):
        # L(¬m) = {i : 0 <= i < N, i not in L(m)} — section III-C
        m = grb.Vector.from_coo(grb.BOOL, 5, [1, 3], [True, True])
        view = build_mask_view(m, complemented=True, structural=False)
        all_keys = np.arange(5, dtype=np.int64)
        assert all_keys[view.allows(all_keys)].tolist() == [0, 2, 4]

    def test_count_allowed(self):
        view = MaskView(np.array([1, 2, 3], dtype=np.int64), complemented=False)
        assert view.count_allowed_in(10) == 3
        cview = MaskView(np.array([1, 2, 3], dtype=np.int64), complemented=True)
        assert cview.count_allowed_in(10) == 7

    def test_no_mask_is_none(self):
        assert build_mask_view(None, False, False) is None


class TestMaskThroughOperations:
    def test_double_complement_is_identity(self, rng):
        from tests.conftest import random_matrix

        A = random_matrix(rng, 6, 6, 0.5)
        M = random_matrix(rng, 6, 6, 0.4, domain=grb.BOOL)
        s = grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT64")
        # complement applied by flipping which side we write: mask + SCMP
        # twice partitions exactly (already covered), here: SCMP of SCMP
        # via apply on an empty intermediate equals plain mask
        C1 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C1, M, None, s, A, A, grb.DESC_R)
        # build explicit complement pattern as a BOOL matrix, complement it
        rows, cols, vals = M.extract_tuples()
        truthy = vals.astype(bool)
        comp_pat = {
            (i, j)
            for i in range(6)
            for j in range(6)
            if (i, j) not in set(zip(rows[truthy].tolist(), cols[truthy].tolist()))
        }
        Mc = grb.Matrix(grb.BOOL, 6, 6)
        if comp_pat:
            ri, ci = zip(*comp_pat)
            Mc.build(ri, ci, [True] * len(comp_pat))
        C2 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C2, Mc, None, s, A, A, grb.DESC_RSC)  # ¬(¬M) == M
        assert {(i, j): int(v) for i, j, v in C1} == {
            (i, j): int(v) for i, j, v in C2
        }

    def test_empty_mask_blocks_everything(self, rng):
        from tests.conftest import random_matrix

        A = random_matrix(rng, 4, 4, 0.6)
        M = grb.Matrix(grb.BOOL, 4, 4)  # no stored elements
        C = grb.Matrix.from_coo(grb.INT64, 4, 4, [0], [0], [9])
        grb.mxm(C, M, None, grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT64"), A, A)
        # merge mode: nothing written, old C intact
        assert {(i, j): int(v) for i, j, v in C} == {(0, 0): 9}

    def test_empty_mask_complement_allows_everything(self, rng):
        from tests.conftest import random_matrix

        A = random_matrix(rng, 4, 4, 0.6)
        M = grb.Matrix(grb.BOOL, 4, 4)
        C1 = grb.Matrix(grb.INT64, 4, 4)
        C2 = grb.Matrix(grb.INT64, 4, 4)
        s = grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT64")
        grb.mxm(C1, M, None, s, A, A, grb.DESC_RSC)
        grb.mxm(C2, None, None, s, A, A)
        assert {(i, j): int(v) for i, j, v in C1} == {
            (i, j): int(v) for i, j, v in C2
        }

    def test_fig3_mask_prunes_discovered(self):
        # the BC forward sweep's central trick: numsp as complemented mask
        # prunes already-discovered vertices from the next frontier
        A = grb.Matrix.from_coo(
            grb.INT32, 3, 3, [0, 1, 1], [1, 0, 2], [1, 1, 1]
        )
        numsp = grb.Matrix.from_coo(grb.INT32, 3, 1, [0, 1], [0, 0], [1, 1])
        frontier = grb.Matrix.from_coo(grb.INT32, 3, 1, [1], [0], [1])
        grb.mxm(
            frontier, numsp, None,
            grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT32"),
            A, frontier, grb.DESC_TSR,
        )
        # Aᵀ f reaches {0, 2}, but 0 is already in numsp: only 2 survives
        assert {(i, j) for i, j, _ in frontier} == {(2, 0)}
