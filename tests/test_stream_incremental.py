"""Incremental-algorithm identity: handles advanced edge-delta by
edge-delta must agree with from-scratch recomputation after every flush —
exactly for BFS levels and components, within the documented
O(tol·n/(1-α)) envelope for PageRank — across random delta schedules and
both execution modes.  The guards (hostile weights, asymmetric deltas,
oversized batches) must *fall back*, never drift."""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import algorithms
from repro.stream import EdgeBuffer
from repro.stream.incremental import make_handle


@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


_PR_ATOL = 1e-5       # the incremental PageRank residual-push envelope


def _random_graph(rng: np.random.Generator, n: int, symmetric: bool):
    nnz = int(rng.integers(n, 3 * n))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.uniform(0.1, 2.0, nnz)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    model: dict[tuple[int, int], float] = {}
    for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        model[(i, j)] = model.get((j, i), v) if symmetric else v
        if symmetric:
            model[(j, i)] = model[(i, j)]
    r = np.array([k[0] for k in model], dtype=np.int64)
    c = np.array([k[1] for k in model], dtype=np.int64)
    v = np.array(list(model.values()))
    return grb.Matrix.from_coo(grb.FP64, n, n, r, c, v), model


def _random_batch(rng, buf: EdgeBuffer, model: dict, n: int, symmetric: bool):
    """Buffer 1-3 random append calls, mirroring the edits for symmetric
    graphs, and advance the last-writer-wins dict model in call order."""
    for _ in range(int(rng.integers(1, 4))):
        if rng.random() < 0.7 or not model:
            k = int(rng.integers(1, 4))
            rows = rng.integers(0, n, k)
            cols = rng.integers(0, n, k)
            vals = rng.uniform(0.1, 2.0, k)
            buf.set_edges(rows, cols, vals)
            if symmetric:
                buf.set_edges(cols, rows, vals)
            for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
                model[(i, j)] = v
                if symmetric:
                    model[(j, i)] = v
        else:
            pick = sorted(model)[int(rng.integers(0, len(model)))]
            buf.remove_edges([pick[0]], [pick[1]])
            model.pop(pick, None)
            if symmetric:
                buf.remove_edges([pick[1]], [pick[0]])
                model.pop((pick[1], pick[0]), None)


def _scratch_graph(model: dict, n: int) -> grb.Matrix:
    r = np.array([k[0] for k in model], dtype=np.int64)
    c = np.array([k[1] for k in model], dtype=np.int64)
    v = np.array(list(model.values()))
    return grb.Matrix.from_coo(grb.FP64, n, n, r, c, v)


@pytest.mark.parametrize("seed", range(20))
def test_incremental_matches_scratch_across_delta_schedules(seed):
    rng = np.random.default_rng(seed * 7919 + 3)
    n = int(rng.integers(5, 16))
    symmetric = bool(rng.random() < 0.5)
    A, model = _random_graph(rng, n, symmetric)
    source = int(rng.integers(0, n))

    pr = make_handle("pagerank", A)
    bfs = make_handle("bfs_levels", A, {"source": source})
    cc = make_handle("connected_components", A)
    assert pr is not None and bfs is not None and cc is not None

    buf = EdgeBuffer(A)
    for _ in range(int(rng.integers(2, 5))):
        _random_batch(rng, buf, model, n, symmetric)
        delta = buf.flush().delta
        pr.update(A, delta)
        bfs.update(A, delta)
        cc.update(A, delta)

        S = _scratch_graph(model, n)
        assert np.allclose(
            pr.result(), algorithms.pagerank(S),
            rtol=0, atol=_PR_ATOL, equal_nan=True,
        )
        want_levels = algorithms.bfs_levels(S, source)
        gi, gv = bfs.result().extract_tuples()
        wi, wv = want_levels.extract_tuples()
        assert gi.tolist() == wi.tolist()
        assert gv.tolist() == wv.tolist()
        assert np.array_equal(cc.result(), algorithms.connected_components(S))


class TestGuards:
    def test_oversized_delta_falls_back_to_full(self):
        A, model = _random_graph(np.random.default_rng(0), 10, False)
        h = make_handle("pagerank", A)
        buf = EdgeBuffer(A)
        # rewrite well over 25% of the graph in one batch
        keys = sorted(model)
        rows = [k[0] for k in keys]
        cols = [k[1] for k in keys]
        buf.set_edges(rows, cols, [3.3] * len(keys))
        info = h.update(A, buf.flush().delta)
        assert info["mode"] == "full"
        assert np.allclose(
            h.result(), algorithms.pagerank(A), rtol=0, atol=_PR_ATOL
        )

    def test_small_delta_is_incremental_and_cheaper(self):
        A, model = _random_graph(np.random.default_rng(1), 14, False)
        h = make_handle("pagerank", A)
        buf = EdgeBuffer(A)
        buf.set_edges([0], [1], [1.5])
        info = h.update(A, buf.flush().delta)
        assert info["mode"] == "incremental"
        assert info["work_ratio"] < 10.0    # bounded push work, not O(iters·nnz)

    def test_degenerate_weights_match_scratch_exactly(self):
        # negative weights make the PageRank affine map unhealthy: the
        # handle must serve scratch's own full-recompute output verbatim
        # (renormalizing huge cancelling scores would perturb them)
        A = grb.Matrix.from_coo(
            grb.FP64, 4, 4, [0, 1, 1, 2], [1, 0, 2, 3], [1.0, -1.0, 1.0, 0.5]
        )
        h = make_handle("pagerank", A)
        buf = EdgeBuffer(A)
        buf.set_edges([3], [0], [-2.0])
        info = h.update(A, buf.flush().delta)
        assert info["mode"] == "full"
        assert np.array_equal(
            h.result(), algorithms.pagerank(A), equal_nan=True
        )

    def test_asymmetric_delta_on_symmetric_graph_refreshes_cc(self):
        A, model = _random_graph(np.random.default_rng(2), 8, True)
        h = make_handle("connected_components", A)
        buf = EdgeBuffer(A)
        # a *structurally new* edge with no mirrored add: value-only edits
        # keep the pattern symmetric, so pick a pair the graph lacks
        i, j = next(
            (i, j) for i in range(8) for j in range(8)
            if i != j and (i, j) not in model
        )
        buf.set_edges([i], [j], [1.0])
        info = h.update(A, buf.flush().delta)
        assert info["mode"] == "full"
        assert np.array_equal(h.result(), algorithms.connected_components(A))

    def test_unclean_graph_refreshes_bfs(self):
        # a zero-valued edge breaks the "stored implies reachable" reading
        # the incremental frontier repair depends on
        A, _ = _random_graph(np.random.default_rng(3), 8, False)
        h = make_handle("bfs_levels", A, {"source": 0})
        buf = EdgeBuffer(A)
        buf.set_edges([2], [5], [0.0])
        info = h.update(A, buf.flush().delta)
        assert info["mode"] == "full"
        gi, gv = h.result().extract_tuples()
        wi, wv = algorithms.bfs_levels(A, 0).extract_tuples()
        assert gi.tolist() == wi.tolist() and gv.tolist() == wv.tolist()


class TestFactory:
    def test_unsupported_combinations_return_none(self):
        A = grb.Matrix(grb.FP64, 4, 4)
        assert make_handle("triangle_count", A) is None
        assert make_handle("bfs_levels", A) is None          # no source
        assert make_handle(
            "connected_components", A, {"max_iters": 3}
        ) is None

    def test_supported_combinations_build(self):
        A = grb.Matrix.from_coo(grb.FP64, 4, 4, [0], [1], [1.0])
        assert make_handle("pagerank", A) is not None
        assert make_handle("bfs_levels", A, {"source": 2}) is not None
        assert make_handle("connected_components", A) is not None
