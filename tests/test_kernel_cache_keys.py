"""Stability properties of the kernel-cache identity.

The cache key must be *exactly* as discriminating as the generated source:
programs that differ only in temporary naming, input data, or the order of
independent operations share a key (alpha-rename/reorder invariance), while
any change that alters what the kernel computes — semiring, link operator,
accumulator, mask kind, REPLACE bit, dtype, select thunk, flavor — splits
it.  Too coarse a key serves the wrong kernel; too fine a key defeats the
cache.  Both directions are pinned here.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import context, parallel
from repro.kernels import KernelBackend, chain_key, chain_signature, register_backend
from repro.kernels.interpreter import interpret_chain


class RecordingBackend(KernelBackend):
    """Runs chains through the interpreter while capturing signatures —
    also the smallest possible proof that the backend registry is open."""

    name = "recording"

    def __init__(self):
        self.sigs: list = []

    def run_chain(self, specs) -> None:
        self.sigs.append(chain_signature(list(specs)))
        interpret_chain(list(specs))


_RECORDER = RecordingBackend()
register_backend(_RECORDER)


def _keys_for(program, seed=7) -> list[tuple]:
    """Signatures + stitch keys of every chain *program* forms."""
    context._reset()
    parallel.set_kernel_backend("recording")
    grb.init(grb.Mode.NONBLOCKING)
    _RECORDER.sigs = []
    r = np.random.default_rng(seed)
    program(r)
    grb.wait()
    sigs = [s for s in _RECORDER.sigs if s is not None]
    assert sigs, "program formed no codegen-eligible chain"
    return [(s, chain_key(s, "stitch")) for s in sigs]


def _mat(r, dom, n=12, density=0.4):
    nnz = int(density * n * n)
    keys = r.choice(n * n, size=nnz, replace=False)
    rows, cols = np.divmod(keys, n)
    return grb.Matrix.from_coo(dom, n, n, rows, cols, r.uniform(-2, 2, nnz))


def _chain(r, dom=grb.FP64, sr=None, link_op=None, accum=None,
           mask=None, desc=None, thunk=None, n=12):
    """One parameterized producer→apply[→select] chain."""
    A = _mat(r, dom, n)
    C = grb.Matrix(dom, n, n)
    grb.mxm(C, None, None, sr or grb.PLUS_TIMES[dom], A, A)
    grb.apply(C, None, None, grb.AINV[dom], C)
    E = grb.Matrix(dom, n, n)
    M = None
    if mask == "value" or mask == "comp" or mask == "struct":
        M = _mat(r, grb.BOOL, n, 0.5)
    grb.apply(E, M, accum, link_op or grb.ABS[dom], C, desc)
    if thunk is not None:
        sfx = "FP32" if dom is grb.FP32 else "FP64"
        grb.select(E, None, None,
                   grb.index_unary_op(f"GrB_VALUEGT_{sfx}"), E, thunk)
    # overwrite C so the apply-into-E tail may join C's chain (case b):
    # without a later overwriter the planner must materialize C between
    grb.ewise_add(C, None, None, grb.PLUS[dom], A, A)
    return C, E


class TestInvariance:
    def test_alpha_rename_and_fresh_data_share_a_key(self):
        # two structurally identical programs built from different object
        # identities and different random draws: identity is structural
        a = _keys_for(lambda r: _chain(r), seed=1)
        b = _keys_for(lambda r: _chain(r), seed=99)
        assert [k for _, k in a] == [k for _, k in b]

    def test_reordering_independent_programs_preserves_keys(self):
        def fwd(r):
            _chain(r, dom=grb.FP64)
            _chain(r, dom=grb.FP32)

        def rev(r):
            _chain(r, dom=grb.FP32)
            _chain(r, dom=grb.FP64)

        assert sorted(k for _, k in _keys_for(fwd)) == sorted(
            k for _, k in _keys_for(rev)
        )

    def test_signature_never_leaks_live_objects(self):
        # the signature must be pure data (JSON-able), or the disk cache
        # and cross-process sharing could not exist
        import json

        for sig, _ in _keys_for(lambda r: _chain(r)):
            json.dumps(sig)


class TestSplitting:
    BASE = staticmethod(lambda r: _chain(r))

    VARIANTS = {
        "semiring": lambda r: _chain(r, sr=grb.MIN_PLUS[grb.FP64]),
        "link-op": lambda r: _chain(r, link_op=grb.MINV[grb.FP64]),
        "accum": lambda r: _chain(r, accum=grb.PLUS[grb.FP64]),
        "mask-value": lambda r: _chain(r, mask="value"),
        "mask-comp": lambda r: _chain(
            r, mask="comp",
            desc=grb.Descriptor().set(grb.MASK, grb.SCMP),
        ),
        "mask-struct": lambda r: _chain(
            r, mask="struct",
            desc=grb.Descriptor().set(grb.MASK, grb.STRUCTURE),
        ),
        "replace": lambda r: _chain(
            r, mask="value",
            desc=grb.Descriptor().set(grb.OUTP, grb.REPLACE),
        ),
        "dtype": lambda r: _chain(r, dom=grb.FP32),
        "thunk": lambda r: _chain(r, thunk=0.25),
    }

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_semantic_change_splits_the_key(self, variant):
        base_keys = {k for _, k in _keys_for(self.BASE)}
        var_keys = {k for _, k in _keys_for(self.VARIANTS[variant])}
        # no chain of the variant may collide with a base chain unless the
        # varied attribute never reached a chain — guard against that first
        assert var_keys != base_keys
        sigs_b = [s for s, _ in _keys_for(self.BASE)]
        sigs_v = [s for s, _ in _keys_for(self.VARIANTS[variant])]
        assert sigs_b != sigs_v, f"{variant} did not alter any signature"

    def test_distinct_thunks_split(self):
        a = {k for _, k in _keys_for(lambda r: _chain(r, thunk=0.25))}
        b = {k for _, k in _keys_for(lambda r: _chain(r, thunk=0.75))}
        assert a != b

    def test_flavor_splits_the_key(self):
        (sig, stitch_key), *_ = _keys_for(self.BASE)
        assert chain_key(sig, "numba") != stitch_key

    def test_cache_version_is_part_of_the_key(self, monkeypatch):
        from repro.kernels import chain as chain_mod

        (sig, key), *_ = _keys_for(self.BASE)
        monkeypatch.setattr(chain_mod, "CACHE_VERSION",
                            chain_mod.CACHE_VERSION + 1)
        assert chain_key(sig, "stitch") != key


class TestOpNameSplitting:
    """Operator-name parsing feeding numba eligibility: dtype suffixes
    split off, suffix-less singletons (GrB_LNOT) survive whole."""

    def test_split_op(self):
        from repro.kernels.chain import _split_op

        assert _split_op("GrB_MINV_FP32") == ("GrB_MINV", "FP32")
        assert _split_op("GxB_SQRT_FP64") == ("GxB_SQRT", "FP64")
        assert _split_op("GrB_BNOT_UINT8") == ("GrB_BNOT", "UINT8")
        assert _split_op("GrB_LNOT") == ("GrB_LNOT", "")
        assert _split_op("GrB_FP64") == ("GrB", "FP64")
        assert _split_op("GrB_BOOL") == ("GrB", "BOOL")

    @staticmethod
    def _apply_sig(op, dtype):
        t = f"GrB_{dtype}"
        link = {"role": "apply", "op": op, "in": t, "t": t, "out": t,
                "mask": None, "replace": False, "accum": None}
        return {
            "producer": {"kind": "mxm", "op": "GrB_PLUS_TIMES", "out": t,
                         "mask": None, "replace": False},
            "links": [link],
        }

    def test_numba_eligibility_of_widened_families(self):
        from repro.kernels.chain import numba_eligible

        assert numba_eligible(self._apply_sig("GrB_LNOT", "BOOL"))
        assert numba_eligible(self._apply_sig("GrB_BNOT_INT32", "INT32"))
        assert numba_eligible(self._apply_sig("GxB_SQRT_FP32", "FP32"))
        assert numba_eligible(self._apply_sig("GxB_SQRT_FP64", "FP64"))
        assert numba_eligible(self._apply_sig("GxB_EXP_FP64", "FP64"))
        assert numba_eligible(self._apply_sig("GxB_LOG_FP64", "FP64"))
        assert numba_eligible(self._apply_sig("GrB_IDENTITY_UINT16", "UINT16"))

    def test_precision_and_domain_exclusions(self):
        from repro.kernels.chain import numba_eligible

        # exp/log are FP64-only: float32 libm may differ at the last ulp
        assert not numba_eligible(self._apply_sig("GxB_EXP_FP32", "FP32"))
        assert not numba_eligible(self._apply_sig("GxB_LOG_FP32", "FP32"))
        # LNOT is BOOL-only; BNOT never runs on floats
        assert not numba_eligible(self._apply_sig("GrB_LNOT", "FP64"))
        assert not numba_eligible(self._apply_sig("GrB_BNOT_FP64", "FP64"))
        # op dtype must agree with the pipeline dtype
        assert not numba_eligible(self._apply_sig("GxB_SQRT_FP32", "FP64"))

    def test_generated_source_binds_the_new_exprs(self):
        from repro.kernels.chain import numba_eligible
        from repro.kernels.codegen import build_numba_source

        sig = self._apply_sig("GxB_SQRT_FP64", "FP64")
        assert numba_eligible(sig)
        src = build_numba_source(sig)
        assert "np.sqrt(x)" in src
        sig = self._apply_sig("GrB_LNOT", "BOOL")
        src = build_numba_source(sig)
        assert "not x" in src
