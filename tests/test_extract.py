"""``extract`` (Table II row 10; Fig. 3 line 33)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary

from tests.conftest import random_matrix, random_vector


class TestMatrixExtract:
    def test_submatrix(self, rng):
        A = random_matrix(rng, 8, 8, 0.5)
        C = grb.Matrix(grb.INT64, 3, 2)
        grb.matrix_extract(C, None, None, A, [1, 4, 6], [0, 7])
        expect = A.to_dense(0)[np.ix_([1, 4, 6], [0, 7])]
        assert (C.to_dense(0) == expect).all()

    def test_all_rows(self, rng):
        A = random_matrix(rng, 6, 6, 0.5)
        C = grb.Matrix(grb.INT64, 6, 2)
        grb.matrix_extract(C, None, None, A, grb.ALL, [3, 1])
        assert (C.to_dense(0) == A.to_dense(0)[:, [3, 1]]).all()

    def test_duplicate_indices_allowed(self, rng):
        A = random_matrix(rng, 5, 5, 0.6)
        C = grb.Matrix(grb.INT64, 3, 2)
        grb.matrix_extract(C, None, None, A, [2, 2, 0], [1, 1])
        expect = A.to_dense(0)[np.ix_([2, 2, 0], [1, 1])]
        assert (C.to_dense(0) == expect).all()

    def test_fig3_frontier_initialization(self):
        # frontier = Aᵀ(ALL, s) masked by ¬numsp, replace (lines 31-33)
        A = grb.Matrix.from_coo(
            grb.INT32, 4, 4,
            [0, 0, 1, 3], [1, 2, 2, 0], [1, 1, 1, 1],
        )
        s = np.array([0, 3])
        numsp = grb.Matrix(grb.INT32, 4, 2)
        numsp.build(s, np.arange(2), np.ones(2), binary.PLUS[grb.INT32])
        frontier = grb.Matrix(grb.INT32, 4, 2)
        grb.matrix_extract(frontier, numsp, None, A, grb.ALL, s, grb.DESC_TSR)
        # column 0 = out-neighbours of vertex 0: {1, 2}; col 1 = of 3: {0}
        assert {(i, j) for i, j, _ in frontier} == {(1, 0), (2, 0), (0, 1)}

    def test_transposed_extract(self, rng):
        A = random_matrix(rng, 5, 7, 0.5)
        C = grb.Matrix(grb.INT64, 7, 5)
        grb.matrix_extract(C, None, None, A, grb.ALL, grb.ALL, grb.DESC_T0)
        assert (C.to_dense(0) == A.to_dense(0).T).all()

    def test_out_of_range_index(self):
        A = grb.Matrix(grb.INT64, 3, 3)
        C = grb.Matrix(grb.INT64, 1, 1)
        with pytest.raises(grb.IndexOutOfBounds):
            grb.matrix_extract(C, None, None, A, [3], [0])

    def test_output_shape_mismatch(self):
        A = grb.Matrix(grb.INT64, 3, 3)
        C = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.matrix_extract(C, None, None, A, [0], [1, 2])


class TestVectorExtract:
    def test_subvector(self, rng):
        u = random_vector(rng, 10, 0.6)
        w = grb.Vector(grb.INT64, 4)
        grb.vector_extract(w, None, None, u, [9, 0, 3, 3])
        ud = u.to_dense(0)
        pat = {i for i, _ in u}
        expect = {
            k: ud[i] for k, i in enumerate([9, 0, 3, 3]) if i in pat
        }
        assert {i: int(v) for i, v in w} == expect

    def test_all(self, rng):
        u = random_vector(rng, 6, 0.5)
        w = grb.Vector(grb.INT64, 6)
        grb.vector_extract(w, None, None, u, grb.ALL)
        assert (w.to_dense(0) == u.to_dense(0)).all()

    def test_with_mask_and_accum(self):
        u = grb.Vector.from_coo(grb.INT64, 4, [0, 1, 2, 3], [1, 2, 3, 4])
        w = grb.Vector.from_coo(grb.INT64, 4, [0, 1], [10, 10])
        m = grb.Vector.from_coo(grb.BOOL, 4, [0], [True])
        grb.vector_extract(w, m, binary.PLUS[grb.INT64], u, grb.ALL)
        # only index 0 written: 10 + 1; index 1 untouched
        assert {i: int(v) for i, v in w} == {0: 11, 1: 10}


class TestColExtract:
    def test_column(self, rng):
        A = random_matrix(rng, 6, 4, 0.5)
        w = grb.Vector(grb.INT64, 6)
        grb.col_extract(w, None, None, A, grb.ALL, 2)
        assert (w.to_dense(0) == A.to_dense(0)[:, 2]).all()

    def test_row_via_tran(self, rng):
        A = random_matrix(rng, 6, 4, 0.5)
        w = grb.Vector(grb.INT64, 4)
        grb.col_extract(w, None, None, A, grb.ALL, 3, grb.DESC_T0)
        assert (w.to_dense(0) == A.to_dense(0)[3, :]).all()

    def test_subset_rows(self, rng):
        A = random_matrix(rng, 6, 4, 0.7)
        w = grb.Vector(grb.INT64, 2)
        grb.col_extract(w, None, None, A, [5, 1], 0)
        d = A.to_dense(0)
        pat = {(i, j) for i, j, _ in A}
        expect = {}
        if (5, 0) in pat:
            expect[0] = d[5, 0]
        if (1, 0) in pat:
            expect[1] = d[1, 0]
        assert {i: int(v) for i, v in w} == expect

    def test_column_out_of_range(self):
        A = grb.Matrix(grb.INT64, 3, 3)
        with pytest.raises(grb.IndexOutOfBounds):
            grb.col_extract(grb.Vector(grb.INT64, 3), None, None, A, grb.ALL, 5)


class TestGenericDispatch:
    def test_dispatch_matrix(self, rng):
        A = random_matrix(rng, 4, 4, 0.5)
        C = grb.Matrix(grb.INT64, 4, 4)
        grb.extract(C, None, None, A, grb.ALL, grb.ALL)
        assert (C.to_dense(0) == A.to_dense(0)).all()

    def test_dispatch_vector(self, rng):
        u = random_vector(rng, 5, 0.5)
        w = grb.Vector(grb.INT64, 5)
        grb.extract(w, None, None, u, grb.ALL)
        assert (w.to_dense(0) == u.to_dense(0)).all()

    def test_dispatch_column(self, rng):
        A = random_matrix(rng, 5, 5, 0.5)
        w = grb.Vector(grb.INT64, 5)
        grb.extract(w, None, None, A, grb.ALL, 1)
        assert (w.to_dense(0) == A.to_dense(0)[:, 1]).all()
