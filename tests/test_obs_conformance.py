"""Metrics-mode conformance: instrumentation must not change execution.

100 seeded fuzz programs, each run with ``run_optimized(...,
obs_capture=True)``:

* **blocking** vs **nonblocking with every planner pass off** must
  produce identical results *and* identical work counters — the two
  modes run the same physical schedule, so realized flops, kernel
  invocations, and write counts have to agree entry for entry;
* **nonblocking under the full planner** must still produce identical
  results (its counters legitimately differ: fusion/CSE/dead-op change
  which kernels run — asserting that the planner's counters never
  *exceed* the unoptimized work pins the direction of the rewrites);
* an instrumented run must equal an uninstrumented run of the same mode
  (obs is observation, not participation).
"""

from __future__ import annotations

import pytest

from repro.fuzz import generate_program
from repro.fuzz.executor import (
    BLOCKING,
    _nb,
    compare_snapshots,
    run_optimized,
)

SEED = 20170529
N_PROGRAMS = 100

#: same physical schedule as blocking: drain in DAG order, no rewrites
PASSES_OFF = _nb(
    "nb-passes-off", dead_op=False, fusion=False, cse=False, parallel=False
)
FULL_PLANNER = _nb("nb-planner")

#: the counters that measure *work done*; identical schedules must match
WORK_COUNTERS = (
    "kernel.invocations",
    "kernel.flops_estimated",
    "kernel.flops_realized",
    "kernel.nnz_out",
    "op.writes",
    "op.nnz_out",
)


def _programs():
    return [generate_program(SEED, i) for i in range(N_PROGRAMS)]


def _work(counters: dict) -> dict:
    return {k: counters.get(k, 0) for k in WORK_COUNTERS}


class TestCountersModeInvariant:
    def test_blocking_vs_passes_off_results_and_counters(self):
        mismatches = []
        for i, p in enumerate(_programs()):
            blocking = run_optimized(p, BLOCKING, obs_capture=True)
            nb = run_optimized(p, PASSES_OFF, obs_capture=True)
            for msg in compare_snapshots(p, blocking, nb):
                mismatches.append(f"program {i}: {msg}")
            if _work(blocking.counters) != _work(nb.counters):
                mismatches.append(
                    f"program {i}: counters diverge\n"
                    f"  blocking: {_work(blocking.counters)}\n"
                    f"  nb      : {_work(nb.counters)}"
                )
        assert not mismatches, "\n".join(mismatches[:10])

    def test_counters_are_populated(self):
        # guard against the comparison degenerating to {} == {}
        populated = 0
        for p in _programs()[:20]:
            snap = run_optimized(p, BLOCKING, obs_capture=True)
            if snap.counters.get("op.writes", 0) > 0:
                populated += 1
        assert populated >= 10, "obs counters mostly empty — capture broken?"


class TestFullPlannerResultsInvariant:
    def test_full_planner_obs_run_matches_blocking(self):
        mismatches = []
        for i, p in enumerate(_programs()):
            blocking = run_optimized(p, BLOCKING, obs_capture=True)
            nb = run_optimized(p, FULL_PLANNER, obs_capture=True)
            for msg in compare_snapshots(p, blocking, nb):
                mismatches.append(f"program {i}: {msg}")
        assert not mismatches, "\n".join(mismatches[:10])

    def test_planner_never_does_more_kernel_work(self):
        # fusion/CSE/dead-op only ever *remove* kernel invocations
        for i, p in enumerate(_programs()[:30]):
            off = run_optimized(p, PASSES_OFF, obs_capture=True)
            on = run_optimized(p, FULL_PLANNER, obs_capture=True)
            assert on.counters.get("kernel.invocations", 0) <= off.counters.get(
                "kernel.invocations", 0
            ), f"program {i}: planner increased kernel invocations"


class TestObservationIsNotParticipation:
    @pytest.mark.parametrize("mode", [BLOCKING, PASSES_OFF, FULL_PLANNER],
                             ids=lambda m: m.name)
    def test_instrumented_equals_uninstrumented(self, mode):
        for i, p in enumerate(_programs()[:25]):
            plain = run_optimized(p, mode)
            observed = run_optimized(p, mode, obs_capture=True)
            msgs = compare_snapshots(p, plain, observed)
            assert not msgs, f"program {i} under {mode.name}: " + "; ".join(msgs)
            assert not plain.counters  # no capture → no counters
