"""Bit-identity of the codegen kernel backend against the interpreter.

Twenty seeded pipelines — float dtypes, masks (plain/complement/structural),
accumulators, REPLACE, in-place links, and chains longer than pairs — each
run in both execution modes under both kernel backends.  Every stored key,
every value, and every dtype must match *exactly*: a backend is an
execution strategy, never a semantic (paper section III-B), and codegen's
contract is bit-identity, not tolerance-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import context, parallel


def _mat(r, dom, n, density=0.35):
    nnz = int(density * n * n)
    keys = r.choice(n * n, size=nnz, replace=False)
    rows, cols = np.divmod(keys, n)
    if dom.is_bool:
        vals = r.integers(0, 2, nnz).astype(bool)
    else:
        vals = r.uniform(-2.0, 2.0, nnz)
    return grb.Matrix.from_coo(dom, n, n, rows, cols, vals)


def _vec(r, dom, n, density=0.5):
    nnz = max(1, int(density * n))
    idx = r.choice(n, size=nnz, replace=False)
    vals = r.uniform(-2.0, 2.0, nnz)
    return grb.Vector.from_coo(dom, n, idx, vals)


def _pipeline(seed: int, backend: str, nonblocking: bool):
    """One seeded pipeline; returns (snapshots, fused-contraction count)."""
    context._reset()
    parallel.set_kernel_backend(backend)
    if nonblocking:
        grb.init(grb.Mode.NONBLOCKING)
    r = np.random.default_rng(1000 + seed)
    dom = grb.FP64 if seed % 2 else grb.FP32
    sfx = "FP64" if seed % 2 else "FP32"
    n = 16 + seed % 5

    A, B = _mat(r, dom, n), _mat(r, dom, n)
    M = _mat(r, grb.BOOL, n, 0.5)
    u = _vec(r, dom, n)
    C = grb.Matrix(dom, n, n)
    E = grb.Matrix(dom, n, n)
    w = grb.Vector(dom, n)
    v = grb.Vector(dom, n)

    sr = grb.PLUS_TIMES[dom]
    ainv, absop, minv = grb.AINV[dom], grb.ABS[dom], grb.MINV[dom]
    gt = grb.index_unary_op(f"GrB_VALUEGT_{sfx}")
    plus = grb.PLUS[dom]
    replace = grb.Descriptor().set(grb.OUTP, grb.REPLACE)
    replace_scmp = (
        grb.Descriptor().set(grb.OUTP, grb.REPLACE).set(grb.MASK, grb.SCMP)
    )

    # head producer (masked for some seeds) ...
    if seed % 3 == 0:
        grb.mxm(C, M, None, sr, A, B, replace)
    else:
        grb.mxm(C, None, None, sr, A, B)
    # ... streamed through in-place links: chains longer than pairs.  A
    # masked+replace link is overwrite-shaped, so it extends the chain too.
    if seed % 4 == 2:
        grb.apply(C, M, None, ainv, C, replace_scmp)
    else:
        grb.apply(C, None, None, ainv, C)
    grb.apply(C, None, None, absop, C)
    if seed % 2 == 0:
        grb.select(C, None, None, gt, C, 0.25)

    # tails with the full write-pipeline surface: mask, accum, REPLACE
    if seed % 5 == 0:
        grb.apply(E, M, plus, minv, C)
    elif seed % 5 == 1:
        grb.apply(E, M, None, minv, C, replace)
    else:
        grb.apply(E, None, None, minv, C)
    monoid = grb.PLUS_MONOID[dom] if seed % 3 else plus  # binop-shim too
    grb.reduce(w, None, plus if seed % 3 == 1 else None, monoid, E)
    # E is overwritten after the reduce, so apply(E)→reduce(w) may chain
    grb.ewise_add(E, None, None, plus, A, B)

    # a vector chain: mxv → in-place apply → in-place select
    grb.mxv(v, None, None, sr, A, u)
    grb.apply(v, None, None, ainv, v)
    if seed % 2:
        grb.select(v, None, None, gt, v, -0.5)
    grb.wait()

    fused = context._current().queue.stats.fused
    snaps = [obj.extract_tuples() for obj in (C, E, w, v)]
    return snaps, fused


@pytest.mark.parametrize(
    "nonblocking", [False, True], ids=["blocking", "nonblocking"]
)
@pytest.mark.parametrize("seed", range(20))
def test_codegen_bit_identity(seed, nonblocking, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kernels"))
    want, fused_i = _pipeline(seed, "interpreter", nonblocking)
    got, fused_c = _pipeline(seed, "codegen", nonblocking)
    # the planner is backend-independent: identical chains must form
    assert fused_i == fused_c
    if nonblocking:
        assert fused_i > 0, "pipeline no longer exercises fusion"
    for w_tup, g_tup in zip(want, got):
        for w_arr, g_arr in zip(w_tup, g_tup):
            assert np.array_equal(w_arr, g_arr, equal_nan=True)
            assert w_arr.dtype == g_arr.dtype


def test_codegen_populates_and_reuses_disk_cache(tmp_path, monkeypatch):
    from repro.kernels import cache as kc
    from repro.kernels import codegen as cg

    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kernels"))
    cg.clear_kernels()
    kc.clear_memory()
    _pipeline(0, "codegen", nonblocking=True)
    entries = list((tmp_path / "kernels").glob("*.json"))
    assert entries, "no kernels were cached to disk"
    assert kc.stats()["writes"] == len(entries)

    # a fresh process-level state (memory cleared) must hit the disk cache
    cg.clear_kernels()
    kc.clear_memory()
    _pipeline(0, "codegen", nonblocking=True)
    assert kc.stats()["disk_hits"] > 0
    assert kc.stats()["writes"] == 0
