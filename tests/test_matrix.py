"""Matrix collection semantics (paper section III-A)."""

import numpy as np
import pytest

import repro as grb
from repro.ops import binary


class TestConstruction:
    def test_matrix_new(self):
        A = grb.matrix_new(grb.FP32, 3, 7)
        assert A.nrows == 3 and A.ncols == 7 and A.nvals() == 0
        assert A.shape == (3, 7)

    def test_dimensions_must_be_positive(self):
        with pytest.raises(grb.InvalidValue):
            grb.Matrix(grb.FP32, 0, 3)
        with pytest.raises(grb.InvalidValue):
            grb.Matrix(grb.FP32, 3, -1)

    def test_null_domain(self):
        with pytest.raises(grb.NullPointer):
            grb.Matrix(None, 3, 3)


class TestBuild:
    def test_build_fig3_numsp_pattern(self):
        # numsp[s[i], i] = 1 for each source (Fig. 3 eq. 2, lines 20-29)
        s = np.array([4, 1, 7])
        numsp = grb.Matrix(grb.INT32, 10, 3)
        numsp.build(s, np.arange(3), np.ones(3), binary.PLUS[grb.INT32])
        assert numsp.nvals() == 3
        for i, src in enumerate(s):
            assert numsp.extract_element(int(src), i) == 1

    def test_build_dup_combines_in_order(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        A.build([0, 0, 0], [1, 1, 1], [1, 2, 3], binary.PLUS[grb.INT32])
        assert A.extract_element(0, 1) == 6

    def test_build_duplicates_without_dup(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        with pytest.raises(grb.InvalidValue):
            A.build([0, 0], [1, 1], [1, 2])

    def test_build_nonempty_target(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        A.set_element(0, 0, 1)
        with pytest.raises(grb.OutputNotEmpty):
            A.build([1], [1], [1])

    def test_build_bounds(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        with pytest.raises(grb.IndexOutOfBounds):
            A.build([2], [0], [1])
        with pytest.raises(grb.IndexOutOfBounds):
            A.build([0], [5], [1])

    def test_build_row_col_length_mismatch(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            A.build([0, 1], [0], [1, 2])


class TestElementAccess:
    def test_set_extract_remove(self):
        A = grb.Matrix(grb.FP64, 3, 3)
        A.set_element(1, 2, 4.5)
        assert A.extract_element(1, 2) == 4.5
        A.remove_element(1, 2)
        with pytest.raises(grb.NoValue):
            A.extract_element(1, 2)

    def test_undefined_not_zero(self):
        A = grb.Matrix(grb.FP64, 3, 3)
        A.set_element(0, 0, 0.0)
        assert A.nvals() == 1
        with pytest.raises(grb.NoValue):
            A.extract_element(0, 1)

    def test_bounds(self):
        A = grb.Matrix(grb.FP64, 3, 3)
        with pytest.raises(grb.IndexOutOfBounds):
            A.set_element(3, 0, 1.0)
        with pytest.raises(grb.IndexOutOfBounds):
            A.extract_element(0, 3)

    def test_iter_tuples(self):
        A = grb.Matrix.from_coo(grb.INT32, 3, 3, [2, 0], [1, 2], [5, 9])
        assert {(i, j): int(v) for i, j, v in A} == {(2, 1): 5, (0, 2): 9}


class TestViews:
    def test_csr_view(self):
        A = grb.Matrix.from_coo(
            grb.INT32, 3, 4, [0, 0, 2], [1, 3, 0], [10, 20, 30]
        )
        v = A.csr()
        assert v.indptr.tolist() == [0, 2, 2, 3]
        assert v.indices.tolist() == [1, 3, 0]
        assert v.values.tolist() == [10, 20, 30]

    def test_csc_view_is_transpose_csr(self):
        A = grb.Matrix.from_coo(
            grb.INT32, 3, 4, [0, 0, 2], [1, 3, 0], [10, 20, 30]
        )
        v = A.csc()
        assert v.nrows == 4 and v.ncols == 3
        assert v.indptr.tolist() == [0, 1, 2, 2, 3]
        assert v.indices.tolist() == [2, 0, 0]
        assert v.values.tolist() == [30, 10, 20]

    def test_views_invalidate_on_mutation(self):
        A = grb.Matrix.from_coo(grb.INT32, 2, 2, [0], [0], [1])
        _ = A.csr()
        A.set_element(1, 1, 2)
        assert A.csr().nnz == 2
        assert A.csc().nnz == 2


class TestLifecycle:
    def test_clear(self):
        A = grb.Matrix.from_coo(grb.INT32, 2, 2, [0], [0], [1])
        A.clear()
        assert A.nvals() == 0 and A.shape == (2, 2)

    def test_dup_independent(self):
        A = grb.Matrix.from_coo(grb.INT32, 2, 2, [0], [0], [1])
        B = A.dup()
        B.set_element(0, 0, 9)
        assert A.extract_element(0, 0) == 1

    def test_free(self):
        A = grb.Matrix(grb.INT32, 2, 2)
        A.free()
        with pytest.raises(grb.UninitializedObject):
            A.nvals()
        with pytest.raises(grb.UninitializedObject):
            _ = A.nrows


class TestDense:
    def test_round_trip(self, rng):
        D = rng.integers(0, 3, (5, 7))
        A = grb.Matrix.from_dense(grb.INT64, D)
        assert (A.to_dense(0) == D).all()
        assert A.nvals() == int((D != 0).sum())

    def test_to_dense_fill_value(self):
        A = grb.Matrix.from_coo(grb.FP64, 2, 2, [0], [1], [5.0])
        D = A.to_dense(-1.0)
        assert D.tolist() == [[-1.0, 5.0], [-1.0, -1.0]]

    def test_from_dense_requires_2d(self):
        with pytest.raises(grb.InvalidValue):
            grb.Matrix.from_dense(grb.INT32, [1, 2, 3])


class TestTransposeDefinition:
    def test_paper_transpose_tuples(self):
        # A^T = <D, N, M, {(j, i, v)}> — section III-A
        A = grb.Matrix.from_coo(grb.INT32, 2, 3, [0, 1], [2, 0], [7, 8])
        C = grb.Matrix(grb.INT32, 3, 2)
        grb.transpose(C, None, None, A)
        assert {(i, j): int(v) for i, j, v in C} == {(2, 0): 7, (0, 1): 8}
