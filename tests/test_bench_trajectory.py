"""tools/bench_trajectory.py: schema validation and the regression table
over the committed BENCH_*.json baselines."""

import importlib.util
import json
import os

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# tools/ is not a package — load the harness straight from its file
_spec = importlib.util.spec_from_file_location(
    "bench_trajectory", os.path.join(REPO, "tools", "bench_trajectory.py")
)
bt = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bt)


def _baseline(names=("a", "b"), median=0.010):
    return {
        "schema": bt.SCHEMA,
        "benchmarks": [
            {
                "name": n,
                "runs": 3,
                "min_s": median * 0.9,
                "median_s": median,
                "mean_s": median * 1.01,
                "max_s": median * 1.2,
            }
            for n in names
        ],
    }


class TestValidate:
    def test_good_baseline_is_clean(self):
        assert bt.validate(_baseline(), "x.json") == []

    @pytest.mark.parametrize(
        "mangle, needle",
        [
            (lambda d: d.update(schema="bogus/9"), "schema"),
            (lambda d: d.update(benchmarks=[]), "non-empty list"),
            (lambda d: d.update(benchmarks="nope"), "non-empty list"),
            (lambda d: d["benchmarks"][0].pop("name"), "name"),
            (lambda d: d["benchmarks"][0].update(runs=0), "runs"),
            (lambda d: d["benchmarks"][0].update(runs=True), "runs"),
            (lambda d: d["benchmarks"][0].update(median_s=-1), "median_s"),
            (lambda d: d["benchmarks"][0].update(median_s="fast"), "median_s"),
            (lambda d: d["benchmarks"][0].pop("max_s"), "max_s"),
        ],
    )
    def test_mangled_baseline_is_flagged(self, mangle, needle):
        doc = _baseline()
        mangle(doc)
        errs = bt.validate(doc, "x.json")
        assert errs and any(needle in e for e in errs)

    def test_duplicate_name_is_flagged(self):
        doc = _baseline(names=("same", "same"))
        assert any("duplicates" in e for e in bt.validate(doc, "x.json"))

    def test_ordering_violation_is_flagged(self):
        doc = _baseline(names=("a",))
        doc["benchmarks"][0]["min_s"] = 99.0
        assert any("violated" in e for e in bt.validate(doc, "x.json"))

    def test_non_object_top_level(self):
        assert bt.validate([1, 2], "x.json")


class TestCommittedBaselines:
    def test_repo_baselines_validate_clean(self):
        docs, errors = bt.load_baselines(REPO)
        assert errors == []
        labels = [label for label, _ in docs]
        assert {"pr3", "pr4", "pr5"} <= set(labels)

    def test_check_mode_passes_on_repo(self, capsys):
        assert bt.main(["--dir", REPO, "--check"]) == 0
        assert "INVALID" not in capsys.readouterr().err


class TestLoadAndRender:
    def test_numeric_aware_ordering(self, tmp_path):
        for tag in ("pr10", "pr3", "pr4"):
            (tmp_path / f"BENCH_{tag}.json").write_text(
                json.dumps(_baseline())
            )
        docs, errors = bt.load_baselines(str(tmp_path))
        assert errors == []
        assert [label for label, _ in docs] == ["pr3", "pr4", "pr10"]

    def test_invalid_file_fails_check(self, tmp_path, capsys):
        (tmp_path / "BENCH_ok.json").write_text(json.dumps(_baseline()))
        bad = _baseline()
        bad["schema"] = "wrong/0"
        (tmp_path / "BENCH_bad.json").write_text(json.dumps(bad))
        assert bt.main(["--dir", str(tmp_path), "--check"]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_unreadable_json_fails_check(self, tmp_path, capsys):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        assert bt.main(["--dir", str(tmp_path), "--check"]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_empty_dir_fails(self, tmp_path, capsys):
        assert bt.main(["--dir", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_table_cells_and_deltas(self, tmp_path):
        (tmp_path / "BENCH_pr1.json").write_text(
            json.dumps(_baseline(median=0.010))
        )
        (tmp_path / "BENCH_pr2.json").write_text(
            json.dumps(_baseline(median=0.012))
        )
        docs, _ = bt.load_baselines(str(tmp_path))
        table = bt.render_table(docs)
        assert "benchmark" in table and "a" in table and "b" in table
        assert "10.00ms" in table
        assert "12.00ms +20%" in table

    def test_missing_benchmark_renders_dash(self, tmp_path):
        (tmp_path / "BENCH_pr1.json").write_text(
            json.dumps(_baseline(names=("only_early",)))
        )
        (tmp_path / "BENCH_pr2.json").write_text(
            json.dumps(_baseline(names=("only_late",)))
        )
        docs, _ = bt.load_baselines(str(tmp_path))
        table = bt.render_table(docs)
        assert "-" in table.splitlines()[-1]

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "BENCH_pr1.json").write_text(json.dumps(_baseline()))
        out = tmp_path / "traj.json"
        assert bt.main(["--dir", str(tmp_path), "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["baselines"] == ["pr1"]
        assert doc["trajectory"]["a"][0]["median_s"] == pytest.approx(0.010)
