"""Context lifecycle and completion-forcing details not covered by the
execution-model tests."""

import pytest

import repro as grb
from repro import context
from repro.algebra import predefined
from repro.ops import binary


class TestLifecycle:
    def test_default_context_usable_without_init(self):
        # a default blocking context exists pre-init (documented deviation:
        # C requires GrB_init; Python test ergonomics demand a default)
        A = grb.Matrix(grb.INT64, 2, 2)
        assert A.nvals() == 0
        assert not context.is_initialized()

    def test_explicit_init_flags(self):
        grb.init()
        assert context.is_initialized()

    def test_finalize_completes_pending_work(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        grb.finalize()
        # the deferred product ran during finalize; reading afterwards is
        # rejected (context closed) but the content exists
        assert len(C._content()[0]) == 4

    def test_init_inside_active_sequence_rejected(self):
        # exercise via _reset to get a nonblocking default, then enqueue
        context._reset()
        context._ctx.mode = grb.Mode.NONBLOCKING
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.apply(C, None, None, grb.IDENTITY[grb.INT64], A)
        assert len(context._ctx.queue) == 1
        with pytest.raises(grb.InvalidValue):
            grb.init()

    def test_wait_on_empty_sequence_is_noop(self):
        grb.wait()
        grb.wait()

    def test_complete_none_drains_everything(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C1 = grb.Matrix(grb.INT64, 1, 1)
        C2 = grb.Matrix(grb.INT64, 1, 1)
        grb.apply(C1, None, None, grb.IDENTITY[grb.INT64], A)
        grb.apply(C2, None, None, grb.IDENTITY[grb.INT64], A)
        grb.complete()
        assert grb.queue_stats()["executed"] == 2


class TestCompletionForcing:
    def _pending(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        return A, C

    def test_extract_element_forces(self):
        _, C = self._pending()
        assert C.extract_element(0, 0) == 7
        assert grb.queue_stats()["executed"] == 1

    def test_to_dense_forces(self):
        _, C = self._pending()
        assert C.to_dense(0)[0][0] == 7

    def test_iteration_forces(self):
        _, C = self._pending()
        assert len(list(C)) == 4

    def test_dup_forces(self):
        _, C = self._pending()
        D = C.dup()
        assert D.extract_element(0, 0) == 7

    def test_export_forces(self):
        _, C = self._pending()
        indptr, _, _ = C.export_csr()
        assert indptr[-1] == 4

    def test_serialize_forces(self):
        from repro.io import deserialize, serialize

        _, C = self._pending()
        D = deserialize(serialize(C))
        assert D.extract_element(1, 1) == 22

    def test_contains_forces(self):
        grb.init(grb.Mode.NONBLOCKING)
        u = grb.Vector.from_coo(grb.INT64, 3, [1], [5])
        w = grb.Vector(grb.INT64, 3)
        grb.apply(w, None, None, grb.IDENTITY[grb.INT64], u)
        assert 1 in w

    def test_mutation_preserves_program_order(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        C = grb.Matrix(grb.INT64, 1, 1)
        # enqueue write of 1, then direct remove, then enqueue write of 2
        grb.apply(C, None, None, grb.IDENTITY[grb.INT64], A)
        C.remove_element(0, 0)
        grb.apply(
            C, None, binary.PLUS[grb.INT64], grb.IDENTITY[grb.INT64], A
        )
        assert C.extract_element(0, 0) == 1  # empty + accum(1)

    def test_free_completes_consumers(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[5]])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.apply(C, None, None, grb.IDENTITY[grb.INT64], A)
        A.free()  # must drain the op that reads A first
        assert C.extract_element(0, 0) == 5

    def test_free_of_uninvolved_object_does_not_drain(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[5]])
        C = grb.Matrix(grb.INT64, 1, 1)
        other = grb.Matrix(grb.INT64, 1, 1)
        grb.apply(C, None, None, grb.IDENTITY[grb.INT64], A)
        other.free()
        assert grb.queue_stats()["executed"] == 0
