"""Directed planner edge cases (ISSUE satellite): scenarios the fuzzer's
random walk visits rarely but whose hazards live exactly where
``execution/planner/passes.py`` makes its calls — fusion with a still-live
intermediate, CSE across a mutating ``assign``, and REPLACE+mask riding on
a fused pair.  Each scenario is checked for bit-equality against the
blocking-mode result."""

import numpy as np

import repro as grb
from repro import context, planner
from repro.execution import trace

from tests.conftest import random_matrix


def _snap(obj):
    return obj.extract_tuples()


def _assert_same(got, want):
    for g, w in zip(got, want):
        assert np.array_equal(g, w), f"{g!r} != {w!r}"
        assert g.dtype == w.dtype


class TestFusionIntermediateIsLaterOperand:
    """Producer→consumer pair where the consumer's in-place output is read
    again by a *later* op: fusing must preserve the intermediate's final
    value for that reader."""

    def _build(self):
        rng = np.random.default_rng(21)
        A = random_matrix(rng, 8, 8, 0.5)
        B = random_matrix(rng, 8, 8, 0.5)
        T = grb.Matrix(grb.INT64, 8, 8)
        D = grb.Matrix(grb.INT64, 8, 8)
        # candidate pair: mxm into fresh T, then in-place apply on T
        grb.mxm(T, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        grb.apply(T, None, None, grb.AINV[grb.INT64], T)
        # ...but T is also a later operand: its post-apply value must be
        # materialized, fused or not
        grb.ewise_add(D, None, None, grb.PLUS[grb.INT64], T, B)
        return T, D

    def test_matches_blocking(self):
        context._reset()
        want = tuple(_snap(o) for o in self._build())
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        objs = self._build()
        grb.wait()
        for o, w in zip(objs, want):
            _assert_same(_snap(o), w)


class TestCseAcrossMutatingAssign:
    """Two textually identical ``mxm`` calls separated by an ``assign``
    that mutates an input: the second is NOT a common subexpression."""

    def _build(self):
        rng = np.random.default_rng(22)
        A = random_matrix(rng, 6, 6, 0.6)
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C1, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        # mutate A between the twins: overwrite one region with a scalar
        grb.matrix_assign_scalar(A, None, None, 9, [0, 1], [0, 1], None)
        grb.mxm(C2, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        return C1, C2

    def test_no_cse_and_matches_blocking(self):
        context._reset()
        want = tuple(_snap(o) for o in self._build())
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        with trace() as t:
            objs = self._build()
            grb.wait()
        assert t.cse_hits == 0, "CSE merged across a mutated input"
        for o, w in zip(objs, want):
            _assert_same(_snap(o), w)

    def test_control_without_assign_does_cse(self):
        # the same twin mxm with no interleaved write IS deduplicated —
        # proving the mutation, not luck, is what blocked CSE above
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(22)
        A = random_matrix(rng, 6, 6, 0.6)
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        with trace() as t:
            grb.mxm(C1, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.mxm(C2, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.wait()
        assert t.cse_hits == 1
        _assert_same(_snap(C2), _snap(C1))


class TestReplaceMaskOnFusedPair:
    """A masked REPLACE consumer riding on a fusion candidate: the fused
    kernel must still clear the unmasked region of the output."""

    def _build(self):
        rng = np.random.default_rng(23)
        A = random_matrix(rng, 8, 8, 0.5)
        M = random_matrix(rng, 8, 8, 0.4, domain=grb.BOOL)
        C = grb.Matrix(grb.INT64, 8, 8)
        desc = grb.Descriptor().set(grb.OUTP, grb.REPLACE)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        # in-place masked REPLACE apply: C⟨M,replace⟩ = -C
        grb.apply(C, M, None, grb.AINV[grb.INT64], C, desc)
        return C

    def test_matches_blocking(self):
        context._reset()
        want = _snap(self._build())
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        C = self._build()
        grb.wait()
        _assert_same(_snap(C), want)

    def test_matches_blocking_under_all_pass_ablation(self):
        context._reset()
        want = _snap(self._build())
        for knobs in (
            dict(fusion=False),
            dict(cse=False),
            dict(dead_op=False),
            dict(parallel=False),
            dict(enabled=False),
        ):
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            planner.configure(**knobs)
            C = self._build()
            grb.wait()
            _assert_same(_snap(C), want)
