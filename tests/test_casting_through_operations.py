"""Implicit-cast points through full operation pipelines.

The paper's BC example leans on implicit conversions at every stage
(INT32 numsp → BOOL mask, INT32 → FP32 MINV input, FP32 accum into FP32).
These tests pin each cast point of the pipeline individually: operator
inputs, operator output → T, T → accumulator input, accumulator output →
C's domain, and mask values → BOOL.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, unary


class TestOperatorInputCasts:
    def test_int_inputs_through_float_semiring(self):
        A = grb.Matrix.from_coo(grb.INT32, 1, 1, [0], [0], [3])
        C = grb.Matrix(grb.FP64, 1, 1)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.FP64], A, A)
        assert C.extract_element(0, 0) == 9.0

    def test_float_inputs_through_int_semiring_truncate(self):
        A = grb.Matrix.from_coo(grb.FP64, 1, 1, [0], [0], [2.9])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert C.extract_element(0, 0) == 4  # trunc(2.9) = 2; 2*2

    def test_bool_inputs_counted_as_ints(self):
        # the BC trick: boolean pattern fed to integer arithmetic
        A = grb.Matrix.from_coo(
            grb.BOOL, 2, 2, [0, 0], [0, 1], [True, True]
        )
        u = grb.Vector.from_coo(grb.BOOL, 2, [0, 1], [True, True])
        w = grb.Vector(grb.INT32, 2)
        grb.mxv(w, None, None, predefined.PLUS_TIMES[grb.INT32], A, u)
        assert w.extract_element(0) == 2  # two true edges = count 2

    def test_mixed_domains_in_ewise(self):
        A = grb.Matrix.from_coo(grb.INT8, 1, 1, [0], [0], [100])
        B = grb.Matrix.from_coo(grb.FP32, 1, 1, [0], [0], [0.5])
        C = grb.Matrix(grb.FP64, 1, 1)
        grb.ewise_add(C, None, None, binary.PLUS[grb.FP64], A, B)
        assert C.extract_element(0, 0) == 100.5


class TestResultToOutputCasts:
    def test_float_result_into_int8_wraps_after_trunc(self):
        A = grb.Matrix.from_coo(grb.FP64, 1, 1, [0], [0], [20.0])
        C = grb.Matrix(grb.INT8, 1, 1)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.FP64], A, A)
        # 400 mod 256 = 144 -> wraps to -112 in int8
        assert C.extract_element(0, 0) == np.int8(-112)

    def test_int_result_into_bool(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [5])
        C = grb.Matrix(grb.BOOL, 1, 1)
        grb.apply(C, None, None, unary.IDENTITY[grb.INT64], A)
        assert C.extract_element(0, 0) == True  # noqa: E712

    def test_explicit_zero_result_into_bool_is_stored_false(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [0])
        C = grb.Matrix(grb.BOOL, 1, 1)
        grb.apply(C, None, None, unary.IDENTITY[grb.INT64], A)
        assert C.nvals() == 1
        assert C.extract_element(0, 0) == False  # noqa: E712


class TestAccumulatorCasts:
    def test_fig3_fp32_accum_over_int_result(self):
        # bcu(FP32) += w(FP32) .* numsp(INT32): INT32 values cast into the
        # FP32 multiply, result accumulated in FP32
        w = grb.Matrix.from_coo(grb.FP32, 1, 1, [0], [0], [0.5])
        numsp = grb.Matrix.from_coo(grb.INT32, 1, 1, [0], [0], [4])
        bcu = grb.Matrix.from_coo(grb.FP32, 1, 1, [0], [0], [1.0])
        grb.ewise_mult(
            bcu, None, binary.PLUS[grb.FP32], binary.TIMES[grb.FP32], w, numsp
        )
        assert bcu.extract_element(0, 0) == np.float32(3.0)

    def test_accum_output_cast_to_int_output(self):
        A = grb.Matrix.from_coo(grb.FP64, 1, 1, [0], [0], [0.6])
        C = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [10])
        grb.apply(C, None, binary.PLUS[grb.FP64], unary.IDENTITY[grb.FP64], A)
        # Z = plus(10.0, 0.6) = 10.6 -> trunc into INT64 C
        assert C.extract_element(0, 0) == 10

    def test_accum_domain_chain_is_validated(self):
        T = grb.powerset_type()
        U = grb.Matrix(T, 1, 1)
        C = grb.Matrix(grb.INT64, 1, 1)
        union = grb.binary_op_new(lambda a, b: a | b, T, T, T)
        with pytest.raises(grb.DomainMismatch):
            grb.apply(C, None, union, unary.IDENTITY[grb.INT64], C)
        with pytest.raises(grb.DomainMismatch):
            # UDT result cannot cast into builtin C
            grb.apply(C, None, None, grb.unary_op_new(
                lambda x: frozenset({x}), grb.INT64, T), C)


class TestMaskValueCasts:
    @pytest.mark.parametrize(
        "domain,stored,expected_allowed",
        [
            (grb.INT32, [0, 7], [False, True]),
            (grb.FP64, [0.0, -0.5], [False, True]),
            (grb.BOOL, [False, True], [False, True]),
            (grb.UINT8, [0, 255], [False, True]),
        ],
    )
    def test_any_builtin_domain_masks(self, domain, stored, expected_allowed):
        # Fig. 2b: "the domain of the Mask matrix must be of type bool or
        # any 'built-in' GraphBLAS type"
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1]])
        M = grb.Matrix(domain, 1, 2)
        M.set_element(0, 0, stored[0])
        M.set_element(0, 1, stored[1])
        C = grb.Matrix(grb.INT64, 1, 2)
        grb.apply(C, M, None, unary.IDENTITY[grb.INT64], A, grb.DESC_R)
        got = {(i, j) for i, j, _ in C}
        want = {(0, k) for k in range(2) if expected_allowed[k]}
        assert got == want

    def test_fig3_numsp_as_mask(self):
        # INT32 path counts used directly as a boolean write mask
        numsp = grb.Matrix.from_coo(
            grb.INT32, 2, 1, [0, 1], [0, 0], [3, 0]
        )
        A = grb.Matrix.from_dense(grb.INT64, [[1], [1]])
        C = grb.Matrix(grb.INT64, 2, 1)
        grb.apply(C, numsp, None, unary.IDENTITY[grb.INT64], A, grb.DESC_R)
        # row 1's stored 0 casts to false: excluded
        assert {(i, j) for i, j, _ in C} == {(0, 0)}


class TestSetElementCasts:
    def test_set_element_wraps(self):
        v = grb.Vector(grb.INT8, 2)
        v.set_element(0, 300)
        assert v.extract_element(0) == 44

    def test_set_element_truncates_floats(self):
        v = grb.Vector(grb.INT32, 2)
        v.set_element(0, -2.9)
        assert v.extract_element(0) == -2

    def test_assign_scalar_casts(self):
        C = grb.Matrix(grb.INT16, 1, 1)
        grb.matrix_assign_scalar(C, None, None, 70000, grb.ALL, grb.ALL)
        assert C.extract_element(0, 0) == 70000 % 65536  # 4464: wraps mod 2^16
