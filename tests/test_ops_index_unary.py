"""Index-unary (positional) operators used by select/apply."""

import numpy as np
import pytest

import repro as grb
from repro.ops import index_unary as iu


class TestPositionalPredicates:
    def test_tril(self):
        # keep when j <= i + k
        assert iu.TRIL(0, 2, 1, 0) is True or iu.TRIL(0, 2, 1, 0) == True  # noqa: E712
        assert bool(iu.TRIL(0, 1, 2, 0)) is False
        assert bool(iu.TRIL(0, 1, 2, 1)) is True  # superdiagonal included

    def test_triu(self):
        assert bool(iu.TRIU(0, 1, 2, 0)) is True
        assert bool(iu.TRIU(0, 2, 1, 0)) is False

    def test_diag_offdiag(self):
        assert bool(iu.DIAG(0, 3, 3, 0)) is True
        assert bool(iu.DIAG(0, 3, 4, 0)) is False
        assert bool(iu.DIAG(0, 3, 4, 1)) is True
        assert bool(iu.OFFDIAG(0, 3, 3, 0)) is False

    def test_row_col_bounds(self):
        assert bool(iu.ROWLE(0, 2, 0, 2)) is True
        assert bool(iu.ROWGT(0, 2, 0, 2)) is False
        assert bool(iu.COLLE(0, 0, 5, 4)) is False
        assert bool(iu.COLGT(0, 0, 5, 4)) is True

    def test_array_forms(self):
        rows = np.array([0, 1, 2])
        cols = np.array([2, 1, 0])
        out = iu.TRIL.apply_arrays(np.zeros(3), rows, cols, 0)
        assert out.tolist() == [False, True, True]


class TestTransformers:
    def test_rowindex_colindex(self):
        assert iu.ROWINDEX(0, 5, 9, 0) == 5
        assert iu.COLINDEX(0, 5, 9, 0) == 9
        assert iu.ROWINDEX(0, 5, 9, 2) == 7

    def test_diagindex(self):
        assert iu.DIAGINDEX(0, 2, 5, 0) == 3

    def test_output_domains(self):
        assert iu.ROWINDEX.d_out is grb.INT64
        assert iu.TRIL.d_out is grb.BOOL


class TestValuePredicates:
    def test_value_eq(self):
        op = iu.VALUEEQ[grb.INT32]
        assert bool(op(5, 0, 0, 5)) is True
        assert bool(op(4, 0, 0, 5)) is False

    def test_value_ordering(self):
        assert bool(iu.VALUEGT[grb.FP64](2.5, 0, 0, 2.0)) is True
        assert bool(iu.VALUELE[grb.FP64](2.5, 0, 0, 2.0)) is False
        assert bool(iu.VALUELT[grb.INT8](-3, 0, 0, 0)) is True
        assert bool(iu.VALUEGE[grb.INT8](0, 0, 0, 0)) is True
        assert bool(iu.VALUENE[grb.INT8](1, 0, 0, 0)) is True

    def test_array_form(self):
        op = iu.VALUEGT[grb.INT64]
        vals = np.array([1, 5, 3], dtype=np.int64)
        out = op.apply_arrays(vals, np.zeros(3, np.int64), np.zeros(3, np.int64), 2)
        assert out.tolist() == [False, True, True]


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["GrB_TRIL", "GrB_TRIU", "GrB_DIAG", "GrB_VALUEEQ_INT32"]
    )
    def test_lookup(self, name):
        assert grb.index_unary_op(name).name == name

    def test_unknown(self):
        with pytest.raises(grb.InvalidValue):
            grb.index_unary_op("GrB_NOPE")

    def test_user_defined(self):
        op = grb.index_unary_op_new(
            lambda a, i, j, k: (i + j) % 2 == 0,
            grb.INT64, grb.INT64, grb.BOOL, name="checker",
        )
        assert bool(op(0, 1, 1, 0)) is True
        assert bool(op(0, 1, 2, 0)) is False
