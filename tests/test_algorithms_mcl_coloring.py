"""Markov clustering and greedy coloring."""

import networkx as nx
import numpy as np
import pytest

import repro as grb
from repro.algorithms import greedy_coloring, markov_clustering
from repro.io import complete_graph, from_networkx, grid_2d, path_graph

@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


def two_cliques_with_bridge(k=6):
    """Two k-cliques joined by a single edge: the canonical MCL test."""
    G = nx.Graph()
    G.add_edges_from(
        (i, j) for i in range(k) for j in range(i + 1, k)
    )
    G.add_edges_from(
        (i, j) for i in range(k, 2 * k) for j in range(i + 1, 2 * k)
    )
    G.add_edge(0, k)
    return G


class TestMCL:
    def test_separates_two_cliques(self):
        G = two_cliques_with_bridge(6)
        A = from_networkx(G)
        labels = markov_clustering(A)
        left = {labels[v] for v in range(6)}
        right = {labels[v] for v in range(6, 12)}
        assert len(left) == 1 and len(right) == 1
        assert left != right

    def test_disconnected_components_never_merge(self):
        G = nx.disjoint_union(nx.complete_graph(4), nx.complete_graph(5))
        A = from_networkx(G)
        labels = markov_clustering(A)
        assert {labels[v] for v in range(4)}.isdisjoint(
            {labels[v] for v in range(4, 9)}
        )

    def test_complete_graph_is_one_cluster(self):
        K = complete_graph(8)
        labels = markov_clustering(K)
        assert len(set(labels.tolist())) == 1

    def test_labels_are_canonical_members(self):
        G = two_cliques_with_bridge(5)
        A = from_networkx(G)
        labels = markov_clustering(A)
        for lab in set(labels.tolist()):
            members = np.nonzero(labels == lab)[0]
            assert lab == members.min()  # cluster labelled by smallest member

    def test_parameter_validation(self):
        K = complete_graph(3)
        with pytest.raises(grb.InvalidValue):
            markov_clustering(K, expansion=1)
        with pytest.raises(grb.InvalidValue):
            markov_clustering(K, inflation=1.0)


class TestColoring:
    @pytest.mark.parametrize("seed", [1, 17])
    def test_proper_coloring_random_graph(self, seed):
        G = nx.gnm_random_graph(50, 220, seed=seed)
        A = from_networkx(G)
        colors = greedy_coloring(A, seed=seed)
        assert (colors >= 0).all()
        for u, v in G.edges():
            assert colors[u] != colors[v]

    def test_color_count_bounded_by_max_degree_plus_one(self):
        G = nx.gnm_random_graph(60, 240, seed=3)
        A = from_networkx(G)
        colors = greedy_coloring(A)
        max_deg = max(dict(G.degree()).values())
        assert colors.max() + 1 <= max_deg + 1

    def test_bipartite_grid_two_colorable_bound(self):
        # greedy on a grid may use >2 colors but never more than 5 (Δ+1)
        G = grid_2d(5, 5)
        colors = greedy_coloring(G)
        rows, cols, _ = G.extract_tuples()
        assert all(colors[i] != colors[j] for i, j in zip(rows, cols))
        assert colors.max() + 1 <= 5

    def test_complete_graph_needs_n_colors(self):
        K = complete_graph(6)
        colors = greedy_coloring(K)
        assert len(set(colors.tolist())) == 6

    def test_path_graph(self):
        P = path_graph(10, directed=False)
        colors = greedy_coloring(P)
        rows, cols, _ = P.extract_tuples()
        assert all(colors[i] != colors[j] for i, j in zip(rows, cols))

    def test_deterministic_for_seed(self):
        G = from_networkx(nx.gnm_random_graph(30, 90, seed=5))
        a = greedy_coloring(G, seed=9)
        b = greedy_coloring(G, seed=9)
        assert (a == b).all()
