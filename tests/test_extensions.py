"""Spec 1.3/2.0 extensions: resize, diag, import/export, serialization,
and eWiseUnion."""

import numpy as np
import pytest

import repro as grb
from repro.io import deserialize, serialize
from repro.ops import binary

from tests.conftest import random_matrix, random_vector


class TestResize:
    def test_matrix_shrink_drops_out_of_bounds(self, rng):
        A = random_matrix(rng, 8, 8, 0.5)
        before = {(i, j): int(v) for i, j, v in A}
        A.resize(5, 3)
        assert A.shape == (5, 3)
        after = {(i, j): int(v) for i, j, v in A}
        assert after == {k: v for k, v in before.items() if k[0] < 5 and k[1] < 3}

    def test_matrix_grow_keeps_everything(self, rng):
        A = random_matrix(rng, 4, 4, 0.6)
        before = {(i, j): int(v) for i, j, v in A}
        A.resize(10, 12)
        assert A.shape == (10, 12)
        assert {(i, j): int(v) for i, j, v in A} == before

    def test_resize_then_operate(self, rng):
        # the re-encoded keys must still be canonical for kernels
        A = random_matrix(rng, 6, 6, 0.5)
        expected = A.to_dense(0)[:, :4]
        A.resize(6, 4)
        C = grb.Matrix(grb.INT64, 4, 6)
        grb.transpose(C, None, None, A)
        assert (C.to_dense(0) == expected.T).all()

    def test_vector_resize(self, rng):
        v = random_vector(rng, 10, 0.8)
        before = dict(iter(v))
        v.resize(4)
        assert v.size == 4
        assert dict(iter(v)) == {i: x for i, x in before.items() if i < 4}
        v.resize(20)
        assert v.size == 20

    def test_invalid_sizes(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            A.resize(0, 2)
        v = grb.Vector(grb.INT64, 2)
        with pytest.raises(grb.InvalidValue):
            v.resize(-1)


class TestDiag:
    def test_matrix_diag_main(self):
        v = grb.Vector.from_coo(grb.FP64, 3, [0, 2], [1.5, 2.5])
        D = grb.Matrix.diag(v)
        assert D.shape == (3, 3)
        assert {(i, j): float(x) for i, j, x in D} == {
            (0, 0): 1.5, (2, 2): 2.5,
        }

    def test_matrix_diag_offsets(self):
        v = grb.Vector.from_coo(grb.INT64, 2, [0, 1], [7, 8])
        D1 = grb.Matrix.diag(v, 1)
        assert D1.shape == (3, 3)
        assert {(i, j): int(x) for i, j, x in D1} == {(0, 1): 7, (1, 2): 8}
        D2 = grb.Matrix.diag(v, -2)
        assert {(i, j): int(x) for i, j, x in D2} == {(2, 0): 7, (3, 1): 8}

    def test_vector_from_diag(self, rng):
        A = random_matrix(rng, 5, 5, 0.7)
        d = grb.Vector.from_diag(A)
        dense = A.to_dense(0)
        pat = {(i, j) for i, j, _ in A}
        expect = {i: dense[i, i] for i in range(5) if (i, i) in pat}
        assert {i: int(v) for i, v in d} == expect

    def test_vector_from_diag_offset(self, rng):
        A = random_matrix(rng, 5, 5, 0.8)
        d = grb.Vector.from_diag(A, 2)
        assert d.size == 3
        pat = {(i, j) for i, j, _ in A}
        dense = A.to_dense(0)
        expect = {i: dense[i, i + 2] for i in range(3) if (i, i + 2) in pat}
        assert {i: int(v) for i, v in d} == expect

    def test_diag_roundtrip(self):
        v = grb.Vector.from_coo(grb.FP64, 4, [1, 3], [0.5, 0.25])
        back = grb.Vector.from_diag(grb.Matrix.diag(v))
        assert dict(iter(back)) == dict(iter(v))


class TestImportExport:
    def test_csr_round_trip(self, rng):
        A = random_matrix(rng, 6, 9, 0.5)
        indptr, cols, vals = A.export_csr()
        B = grb.Matrix.import_csr(grb.INT64, 6, 9, indptr, cols, vals)
        assert {(i, j): int(v) for i, j, v in A} == {
            (i, j): int(v) for i, j, v in B
        }

    def test_csc_export_matches_transpose(self, rng):
        A = random_matrix(rng, 5, 7, 0.5)
        indptr, rows, vals = A.export_csc()
        T = grb.Matrix.import_csr(grb.INT64, 7, 5, indptr, rows, vals)
        assert (T.to_dense(0) == A.to_dense(0).T).all()

    def test_import_validates_indptr(self):
        with pytest.raises(grb.InvalidValue):
            grb.Matrix.import_csr(grb.INT64, 2, 2, [0, 1], [0], [1])
        with pytest.raises(grb.InvalidValue):
            grb.Matrix.import_csr(grb.INT64, 2, 2, [0, 2, 1], [0, 1], [1, 2])

    def test_import_validates_sorted_unique(self):
        with pytest.raises(grb.InvalidValue):
            grb.Matrix.import_csr(grb.INT64, 1, 3, [0, 2], [1, 0], [1, 2])
        with pytest.raises(grb.InvalidValue):
            grb.Matrix.import_csr(grb.INT64, 1, 3, [0, 2], [1, 1], [1, 2])

    def test_import_validates_bounds(self):
        with pytest.raises(grb.IndexOutOfBounds):
            grb.Matrix.import_csr(grb.INT64, 1, 2, [0, 1], [5], [1])

    def test_vector_round_trip(self, rng):
        v = random_vector(rng, 12, 0.5)
        idx, vals = v.export_sparse()
        w = grb.Vector.import_sparse(grb.INT64, 12, idx, vals)
        assert dict(iter(v)) == dict(iter(w))

    def test_vector_import_validates(self):
        with pytest.raises(grb.InvalidValue):
            grb.Vector.import_sparse(grb.INT64, 5, [3, 1], [1, 2])
        with pytest.raises(grb.IndexOutOfBounds):
            grb.Vector.import_sparse(grb.INT64, 5, [7], [1])


class TestSerialization:
    def test_matrix_round_trip(self, rng):
        A = random_matrix(rng, 7, 5, 0.4, domain=grb.FP64)
        B = deserialize(serialize(A))
        assert B.shape == A.shape and B.type is grb.FP64
        assert {(i, j): float(v) for i, j, v in A} == {
            (i, j): float(v) for i, j, v in B
        }

    def test_empty_matrix(self):
        A = grb.Matrix(grb.INT8, 3, 3)
        B = deserialize(serialize(A))
        assert B.nvals() == 0 and B.type is grb.INT8

    def test_vector_round_trip(self, rng):
        v = random_vector(rng, 9, 0.5, domain=grb.INT32)
        w = deserialize(serialize(v))
        assert w.size == 9 and w.type is grb.INT32
        assert dict(iter(v)) == dict(iter(w))

    def test_scalar_round_trip(self):
        s = grb.Scalar.from_value(grb.FP32, 2.5)
        t = deserialize(serialize(s))
        assert t.extract_value() == np.float32(2.5)
        empty = deserialize(serialize(grb.Scalar(grb.FP32)))
        assert empty.is_empty()

    def test_udt_round_trip(self):
        T = grb.powerset_type()
        v = grb.Vector(T, 3)
        v.build([0, 2], [frozenset({1}), frozenset({2, 3})])
        w = deserialize(serialize(v), udt_class=frozenset)
        assert w.extract_element(2) == frozenset({2, 3})

    def test_udt_requires_class(self):
        T = grb.powerset_type()
        v = grb.Vector(T, 1)
        with pytest.raises(grb.InvalidValue):
            deserialize(serialize(v))

    def test_garbage_rejected(self):
        with pytest.raises(grb.InvalidValue):
            deserialize(b"not a blob")


class TestEWiseUnion:
    def test_minus_with_zero_fills(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 3, [0, 0], [0, 1], [5, 3])
        B = grb.Matrix.from_coo(grb.INT64, 1, 3, [0, 0], [1, 2], [1, 7])
        C = grb.Matrix(grb.INT64, 1, 3)
        grb.ewise_union(C, None, None, binary.MINUS[grb.INT64], A, 0, B, 0)
        # union with fills: 5-0, 3-1, 0-7
        assert {(i, j): int(v) for i, j, v in C} == {
            (0, 0): 5, (0, 1): 2, (0, 2): -7,
        }

    def test_differs_from_ewise_add(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 2, [0], [0], [5])
        B = grb.Matrix.from_coo(grb.INT64, 1, 2, [0], [1], [3])
        Cu = grb.Matrix(grb.INT64, 1, 2)
        Ca = grb.Matrix(grb.INT64, 1, 2)
        grb.ewise_union(Cu, None, None, binary.MINUS[grb.INT64], A, 0, B, 0)
        grb.ewise_add(Ca, None, None, binary.MINUS[grb.INT64], A, B)
        assert Cu.extract_element(0, 1) == -3  # 0 - 3
        assert Ca.extract_element(0, 1) == 3   # copied through

    def test_matches_dense_subtraction(self, rng):
        A = random_matrix(rng, 6, 6, 0.4)
        B = random_matrix(rng, 6, 6, 0.4)
        C = grb.Matrix(grb.INT64, 6, 6)
        grb.ewise_union(C, None, None, binary.MINUS[grb.INT64], A, 0, B, 0)
        assert (C.to_dense(0) == A.to_dense(0) - B.to_dense(0)).all()

    def test_vector_union(self):
        u = grb.Vector.from_coo(grb.FP64, 3, [0], [2.0])
        v = grb.Vector.from_coo(grb.FP64, 3, [1], [4.0])
        w = grb.Vector(grb.FP64, 3)
        grb.ewise_union(w, None, None, binary.DIV[grb.FP64], u, 1.0, v, 2.0)
        assert w.extract_element(0) == 1.0  # 2/2 (beta)
        assert w.extract_element(1) == 0.25  # 1/4 (alpha)
