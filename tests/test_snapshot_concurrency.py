"""Snapshot-store concurrency: readers pin immutable versions while a
writer publishes continuously — no torn views, no version leaks, and the
old reader/writer lock is gone from the service surface entirely.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

import repro.service as service_pkg
from repro import algorithms
from repro.containers import Matrix
from repro.types import FP64
from repro.service import (
    SHARED_PREFIX,
    SHARED_SESSION,
    Service,
    ServiceConfig,
    SnapshotStore,
)
from repro.service import session as session_mod
from repro.service.loadgen import shared_graph_payload


class TestSnapshotStore:
    def test_publish_advances_and_retires_unpinned(self):
        store = SnapshotStore()
        assert store.current_vid() == 0
        v1 = store.publish({"a": 1}, {"a": "FP64"})
        assert v1.vid == 1 and store.current_vid() == 1
        # v0 had no pins: superseding it retires it immediately
        assert store.live_versions() == 1
        assert store.stats()["retired"] == 1

    def test_pin_keeps_version_alive_until_unpin(self):
        store = SnapshotStore()
        store.publish({"x": "old"}, {"x": "FP64"})
        pinned = store.pin()
        store.publish({"x": "new"}, {"x": "FP64"})
        store.publish({"x": "newer"}, {"x": "FP64"})
        # the pinned version is superseded but alive and unchanged
        assert pinned.objects == {"x": "old"}
        assert not pinned.retired
        assert store.live_versions() == 2    # pinned + current
        store.unpin(pinned)
        assert pinned.retired
        assert store.live_versions() == 1
        st = store.stats()
        assert st["pinned"] == 0
        assert st["retired"] == st["published"]  # every superseded version

    def test_no_torn_reads_under_continuous_publish(self):
        # every publication writes the same value into two keys; a reader
        # that ever observes x != y (or either != vid) saw a torn version
        store = SnapshotStore()
        store.publish({"x": 1, "y": 1}, {})
        stop = threading.Event()
        violations: list[str] = []

        def reader():
            while not stop.is_set():
                v = store.pin()
                try:
                    x, y = v.objects["x"], v.objects["y"]
                    if x != y or x != v.vid:
                        violations.append(
                            f"v{v.vid}: x={x} y={y}"
                        )
                finally:
                    store.unpin(v)

        def writer():
            vid = 1
            while not stop.is_set():
                vid += 1
                store.publish({"x": vid, "y": vid}, {})

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()

        assert violations == []
        st = store.stats()
        assert st["published"] > 10         # the stress actually stressed
        assert st["pinned"] == 0            # every pin released
        assert st["live_versions"] == 1     # nothing leaked
        assert st["retired"] == st["published"]


class TestServiceSnapshots:
    def test_readers_never_see_mixed_versions(self):
        # the writer streams atomic two-cell updates where both cells
        # carry the same value; any reader response mixing two values
        # across the cells crossed a version boundary mid-request
        with Service(ServiceConfig(workers=4)) as svc:
            svc.request(SHARED_SESSION, "define", {
                "name": "G", "kind": "matrix", "dtype": "FP64",
                "shape": [4, 4], "entries": [[0, 0, 1.0], [1, 1, 1.0]],
            })
            stop = threading.Event()
            torn: list = []
            reader_errors: list = []

            def writer():
                k = 1.0
                while not stop.is_set():
                    k += 1.0
                    svc.request(SHARED_SESSION, "update", {
                        "graph": "G",
                        "set": [[0, 0, k], [1, 1, k]],
                        "remove": [],
                    })

            def reader(i: int):
                sess = svc.open_session(f"rd{i}")
                while not stop.is_set():
                    try:
                        rsp = svc.request(
                            sess, "query",
                            {"name": SHARED_PREFIX + "G", "what": "tuples"},
                        )
                    except Exception as exc:   # noqa: BLE001
                        reader_errors.append(exc)
                        return
                    vals = rsp["values"]
                    if len(set(vals)) != 1:
                        torn.append(vals)

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(3)]
            threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            time.sleep(0.6)
            stop.set()
            for t in threads:
                t.join()

            assert reader_errors == []
            assert torn == []
            st = svc.stats()["snapshots"]
            assert st["published"] > 2
            # drained: no pins outstanding, old versions retired
            assert st["pinned"] == 0
            assert st["live_versions"] == 1
            assert st["retired"] == st["published"]

    def test_pinned_reader_is_isolated_from_later_writes(self):
        # a reader admitted before a write computes against its pinned
        # version even when the write publishes mid-flight
        with Service(ServiceConfig(workers=2)) as svc:
            svc.request(SHARED_SESSION, "define", shared_graph_payload(3))
            sess = svc.open_session("iso")
            before = svc.request(
                sess, "query", {"name": SHARED_PREFIX + "G", "what": "nvals"},
                timing=True,
            )
            svc.request(SHARED_SESSION, "update", {
                "graph": "G", "set": [[0, 0, 9.0], [1, 1, 9.0]],
                "remove": [],
            })
            after = svc.request(
                sess, "query", {"name": SHARED_PREFIX + "G", "what": "nvals"},
                timing=True,
            )
            assert after["timing"]["shared_version"] \
                == before["timing"]["shared_version"] + 1
            assert after["nvals"] == before["nvals"] + 2


class TestMutationBursts:
    """Publish storms driven through ``stream_mutate``: retirement stays
    bounded, readers stay torn-free, incremental handles keep advancing,
    and the delta-aware memo never serves stale entries."""

    def test_stream_mutate_storm_keeps_retirement_bounded(self):
        n = 8
        with Service(ServiceConfig(workers=2)) as svc:
            svc.request(SHARED_SESSION, "define", {
                "name": "G", "kind": "matrix", "dtype": "FP64",
                "shape": [n, n], "entries": [[0, 1, 1.0], [2, 3, 2.0]],
            })
            model = {(0, 1): 1.0, (2, 3): 2.0}
            rng = random.Random(7)
            rounds = 40
            for _ in range(rounds):
                sets = [[rng.randrange(n), rng.randrange(n),
                         round(rng.uniform(0.1, 2.0), 3)]
                        for _ in range(rng.randrange(1, 4))]
                removes = ([list(k) for k in rng.sample(sorted(model), 1)]
                           if model and rng.random() < 0.4 else [])
                svc.request(SHARED_SESSION, "stream_mutate",
                            {"graph": "G", "set": sets, "remove": removes})
                # mirror the buffer's last-writer-wins call order: the
                # executor stages sets before removes, so an overlapping
                # remove wins within one batch
                for i, j, v in sets:
                    model[(i, j)] = v
                for i, j in removes:
                    model.pop((i, j), None)
            rsp = svc.request(
                svc.open_session("storm-check"), "query",
                {"name": SHARED_PREFIX + "G", "what": "tuples"},
            )
            got = sorted(zip(rsp["rows"], rsp["cols"], rsp["values"]))
            want = sorted((i, j, v) for (i, j), v in model.items())
            assert got == want

            st = svc.stats()["snapshots"]
            # every mutation published a version, none leaked or stayed
            # pinned once the storm drained
            assert st["published"] >= rounds
            assert st["pinned"] == 0
            assert st["live_versions"] == 1
            assert st["retired"] == st["published"]

    def test_readers_never_torn_under_stream_mutate_storm(self):
        # same two-cell invariant as the update-driven test above, but the
        # writer mutates through the streaming ingest path: each batch must
        # flush atomically into one published version
        with Service(ServiceConfig(workers=4)) as svc:
            svc.request(SHARED_SESSION, "define", {
                "name": "G", "kind": "matrix", "dtype": "FP64",
                "shape": [4, 4], "entries": [[0, 0, 1.0], [1, 1, 1.0]],
            })
            stop = threading.Event()
            torn: list = []
            reader_errors: list = []

            def writer():
                k = 1.0
                while not stop.is_set():
                    k += 1.0
                    svc.request(SHARED_SESSION, "stream_mutate", {
                        "graph": "G",
                        "set": [[0, 0, k], [1, 1, k]],
                        "remove": [],
                    })

            def reader(i: int):
                sess = svc.open_session(f"srd{i}")
                while not stop.is_set():
                    try:
                        rsp = svc.request(
                            sess, "query",
                            {"name": SHARED_PREFIX + "G", "what": "tuples"},
                        )
                    except Exception as exc:   # noqa: BLE001
                        reader_errors.append(exc)
                        return
                    if len(set(rsp["values"])) != 1:
                        torn.append(rsp["values"])

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(3)]
            threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            time.sleep(0.6)
            stop.set()
            for t in threads:
                t.join()

            assert reader_errors == []
            assert torn == []
            st = svc.stats()
            assert st["snapshots"]["published"] > 2
            assert st["snapshots"]["pinned"] == 0
            assert st["snapshots"]["live_versions"] == 1

    def test_incremental_pagerank_stays_fresh_under_burst(self):
        n = 32
        with Service(ServiceConfig(workers=2, cache=True)) as svc:
            svc.request(SHARED_SESSION, "define", shared_graph_payload(3))
            sess = svc.open_session("inc")
            read = ("algorithm",
                    {"algo": "pagerank", "graph": SHARED_PREFIX + "G",
                     "args": {}})
            svc.request(sess, *read)        # creates the handle
            rng = random.Random(11)
            for _ in range(25):
                sets = [[rng.randrange(n), rng.randrange(n),
                         round(rng.uniform(0.2, 1.5), 3)]
                        for _ in range(2)]
                svc.request(SHARED_SESSION, "stream_mutate",
                            {"graph": "G", "set": sets, "remove": []})
                svc.request(sess, *read)    # advance + serve each round

            served = svc.request(sess, *read)["result"]
            tup = svc.request(
                sess, "query",
                {"name": SHARED_PREFIX + "G", "what": "tuples"},
            )
            scratch = algorithms.pagerank(Matrix.from_coo(
                FP64, n, n,
                np.asarray(tup["rows"]), np.asarray(tup["cols"]),
                np.asarray(tup["values"], dtype=np.float64),
            ))
            dense = np.zeros(n)
            dense[np.asarray(served["indices"], dtype=np.int64)] = \
                served["values"]
            assert np.allclose(dense, scratch, rtol=0, atol=1e-5)

            streams = svc.stats()["streams"]
            assert streams["advanced"] > 0
            assert streams["served"] > 0

    def test_memo_rekey_keeps_untouched_entries_and_drops_touched(self):
        with Service(ServiceConfig(workers=2, cache=True)) as svc:
            for name in ("G", "H"):
                svc.request(SHARED_SESSION, "define", {
                    "name": name, "kind": "matrix", "dtype": "FP64",
                    "shape": [6, 6],
                    "entries": [[0, 1, 1.0], [1, 2, 1.0], [2, 0, 1.0]],
                })
            sess = svc.open_session("memo")
            probe = ("query", {"name": SHARED_PREFIX + "H", "what": "nvals"})
            first = svc.request(sess, *probe, timing=True)
            assert first["timing"]["cache"] == "miss"
            assert svc.request(sess, *probe, timing=True)[
                "timing"]["cache"] == "hit"

            # a burst touching only G must not evict H's entry: the memo
            # re-keys it to each new version instead of dropping everything
            for k in range(10):
                svc.request(SHARED_SESSION, "stream_mutate", {
                    "graph": "G", "set": [[3, 4, float(k + 1)]],
                    "remove": [],
                })
            again = svc.request(sess, *probe, timing=True)
            assert again["timing"]["cache"] == "hit"
            assert again["nvals"] == first["nvals"]
            assert svc.stats()["cache"]["rekeys"] >= 10

            # touching H itself must drop the entry and serve fresh data
            svc.request(SHARED_SESSION, "stream_mutate", {
                "graph": "H", "set": [[4, 5, 9.0]], "remove": [],
            })
            after = svc.request(sess, *probe, timing=True)
            assert after["timing"]["cache"] == "miss"
            assert after["nvals"] == first["nvals"] + 1


class TestRWLockExcised:
    def test_rwlock_gone_from_the_service_surface(self):
        assert not hasattr(service_pkg, "RWLock")
        assert "RWLock" not in service_pkg.__all__
        assert not hasattr(session_mod, "RWLock")
        assert "RWLock" not in getattr(session_mod, "__all__", ())

    def test_sessions_expose_no_shared_lock(self):
        with Service(ServiceConfig(workers=1)) as svc:
            shared = svc.shared_session
            assert not any("lock" in a.lower() for a in vars(shared))
            assert hasattr(svc, "snapshots")
            assert isinstance(svc.snapshots, SnapshotStore)
