"""Property-based cross-backend validation.

Every operation, with randomized inputs, masks, accumulators, and
descriptor flags, must produce content identical to the spec-literal
reference implementation (:mod:`repro.reference`).  This is the central
correctness argument for the optimized kernels.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro.algebra import predefined
from repro.ops import binary
from repro.reference import (
    RefMatrix,
    RefVector,
    ref_apply,
    ref_assign_scalar_matrix,
    ref_ewise_add,
    ref_ewise_mult,
    ref_extract_matrix,
    ref_kronecker,
    ref_mxm,
    ref_mxv,
    ref_reduce_rows,
    ref_select,
    ref_transpose,
    ref_vxm,
)

from tests.conftest import assert_matrix_equals_ref, assert_vector_equals_ref

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def sparse_matrix(draw, max_dim=8, domain=grb.INT64):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(0, nrows - 1),
                st.integers(0, ncols - 1),
                st.integers(-4, 4),
            ),
            max_size=nrows * ncols,
        )
    )
    content = {(i, j): np.int64(v) for i, j, v in cells}
    M = grb.Matrix(domain, nrows, ncols)
    if content:
        rows, cols, vals = zip(*[(i, j, v) for (i, j), v in content.items()])
        M.build(rows, cols, vals)
    return M, RefMatrix(domain, nrows, ncols, content)


@st.composite
def sparse_vector(draw, size, domain=grb.INT64):
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(-4, 4)),
            max_size=size,
        )
    )
    content = {i: np.int64(v) for i, v in cells}
    v = grb.Vector(domain, size)
    if content:
        idx, vals = zip(*content.items())
        v.build(idx, vals)
    return v, RefVector(domain, size, content)


@st.composite
def matrix_op_scene(draw, square=False, max_dim=7):
    """(C, A, B, mask, flags) consistent for same-shape binary ops."""
    nrows = draw(st.integers(1, max_dim))
    ncols = nrows if square else draw(st.integers(1, max_dim))

    def mk(domain=grb.INT64):
        cells = draw(
            st.lists(
                st.tuples(
                    st.integers(0, nrows - 1),
                    st.integers(0, ncols - 1),
                    st.integers(-4, 4),
                ),
                max_size=nrows * ncols,
            )
        )
        content = {(i, j): np.int64(v) for i, j, v in cells}
        M = grb.Matrix(domain, nrows, ncols)
        if content:
            rows, cols, vals = zip(*[(i, j, v) for (i, j), v in content.items()])
            M.build(rows, cols, vals)
        return M, RefMatrix(domain, nrows, ncols, content)

    C = mk()
    A = mk()
    B = mk()
    use_mask = draw(st.booleans())
    mask = mk(grb.BOOL) if use_mask else (None, None)
    if use_mask:
        # give the bool mask bool values
        Mg, Mr = mask
        Mr.content = {k: bool(v % 2) for k, v in Mr.content.items()}
        Mg.clear()
        if Mr.content:
            rows, cols = zip(*Mr.content.keys())
            Mg.build(rows, cols, list(Mr.content.values()))
        mask = (Mg, Mr)
    flags = {
        "replace": draw(st.booleans()) if use_mask else False,
        "mask_comp": draw(st.booleans()) if use_mask else False,
        "mask_struct": draw(st.booleans()) if use_mask else False,
    }
    accum = draw(st.sampled_from([None, "plus", "minus"]))
    accum_op = {
        None: None,
        "plus": binary.PLUS[grb.INT64],
        "minus": binary.MINUS[grb.INT64],
    }[accum]
    return C, A, B, mask, flags, accum_op


def _desc(flags):
    d = grb.Descriptor()
    if flags.get("replace"):
        d.set(grb.OUTP, grb.REPLACE)
    if flags.get("mask_comp"):
        d.set(grb.MASK, grb.SCMP)
    if flags.get("mask_struct"):
        d.set(grb.MASK, grb.STRUCTURE)
    if flags.get("tran0"):
        d.set(grb.INP0, grb.TRAN)
    if flags.get("tran1"):
        d.set(grb.INP1, grb.TRAN)
    return d


class TestEWiseCrossBackend:
    @given(scene=matrix_op_scene())
    @settings(**SETTINGS)
    def test_ewise_add(self, fresh_context, scene):
        C, A, B, (mg, mr), flags, accum = scene
        grb.ewise_add(C[0], mg, accum, binary.PLUS[grb.INT64], A[0], B[0], _desc(flags))
        ref_ewise_add(C[1], mr, accum, binary.PLUS[grb.INT64], A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene())
    @settings(**SETTINGS)
    def test_ewise_mult(self, fresh_context, scene):
        C, A, B, (mg, mr), flags, accum = scene
        grb.ewise_mult(C[0], mg, accum, binary.TIMES[grb.INT64], A[0], B[0], _desc(flags))
        ref_ewise_mult(C[1], mr, accum, binary.TIMES[grb.INT64], A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene(square=True))
    @settings(**SETTINGS)
    def test_ewise_add_transposed(self, fresh_context, scene):
        C, A, B, (mg, mr), flags, accum = scene
        flags = dict(flags, tran0=True)
        grb.ewise_add(C[0], mg, accum, binary.MIN[grb.INT64], A[0], B[0], _desc(flags))
        ref_ewise_add(C[1], mr, accum, binary.MIN[grb.INT64], A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])


class TestMxmCrossBackend:
    @given(scene=matrix_op_scene(square=True))
    @settings(**SETTINGS)
    def test_mxm_plus_times(self, fresh_context, scene):
        C, A, B, (mg, mr), flags, accum = scene
        s = predefined.PLUS_TIMES[grb.INT64]
        grb.mxm(C[0], mg, accum, s, A[0], B[0], _desc(flags))
        ref_mxm(C[1], mr, accum, s, A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene(square=True), t0=st.booleans(), t1=st.booleans())
    @settings(**SETTINGS)
    def test_mxm_transposes(self, fresh_context, scene, t0, t1):
        C, A, B, (mg, mr), flags, accum = scene
        flags = dict(flags, tran0=t0, tran1=t1)
        s = predefined.MIN_PLUS[grb.INT64]
        grb.mxm(C[0], mg, accum, s, A[0], B[0], _desc(flags))
        ref_mxm(C[1], mr, accum, s, A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene(square=True))
    @settings(**SETTINGS)
    def test_mxm_max_second(self, fresh_context, scene):
        C, A, B, (mg, mr), flags, accum = scene
        s = predefined.MAX_SECOND[grb.INT64]
        grb.mxm(C[0], mg, accum, s, A[0], B[0], _desc(flags))
        ref_mxm(C[1], mr, accum, s, A[1], B[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])


class TestMxvVxmCrossBackend:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_mxv(self, fresh_context, data):
        A, Ar = data.draw(sparse_matrix())
        u, ur = data.draw(sparse_vector(A.ncols))
        w, wr = data.draw(sparse_vector(A.nrows))
        s = predefined.PLUS_TIMES[grb.INT64]
        grb.mxv(w, None, None, s, A, u)
        ref_mxv(wr, None, None, s, Ar, ur)
        assert_vector_equals_ref(w, wr)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_vxm(self, fresh_context, data):
        A, Ar = data.draw(sparse_matrix())
        u, ur = data.draw(sparse_vector(A.nrows))
        w, wr = data.draw(sparse_vector(A.ncols))
        s = predefined.PLUS_TIMES[grb.INT64]
        grb.vxm(w, None, None, s, u, A)
        ref_vxm(wr, None, None, s, ur, Ar)
        assert_vector_equals_ref(w, wr)


class TestUnaryCrossBackend:
    @given(scene=matrix_op_scene())
    @settings(**SETTINGS)
    def test_apply(self, fresh_context, scene):
        C, A, _, (mg, mr), flags, accum = scene
        op = grb.ops.unary.AINV[grb.INT64]
        grb.apply(C[0], mg, accum, op, A[0], _desc(flags))
        ref_apply(C[1], mr, accum, op, A[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene(square=True), k=st.integers(-3, 3))
    @settings(**SETTINGS)
    def test_select_tril(self, fresh_context, scene, k):
        C, A, _, (mg, mr), flags, accum = scene
        grb.select(C[0], mg, accum, grb.TRIL, A[0], k, _desc(flags))
        ref_select(C[1], mr, accum, grb.TRIL, A[1], k, **flags)
        assert_matrix_equals_ref(C[0], C[1])

    @given(scene=matrix_op_scene(square=True))
    @settings(**SETTINGS)
    def test_transpose(self, fresh_context, scene):
        C, A, _, (mg, mr), flags, accum = scene
        grb.transpose(C[0], mg, accum, A[0], _desc(flags))
        ref_transpose(C[1], mr, accum, A[1], **flags)
        assert_matrix_equals_ref(C[0], C[1])


class TestReduceExtractAssignCrossBackend:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_reduce_rows(self, fresh_context, data):
        A, Ar = data.draw(sparse_matrix())
        w, wr = data.draw(sparse_vector(A.nrows))
        m = grb.monoid("GrB_PLUS_MONOID_INT64")
        grb.reduce_to_vector(w, None, None, m, A)
        ref_reduce_rows(wr, None, None, m, Ar)
        assert_vector_equals_ref(w, wr)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_extract(self, fresh_context, data):
        A, Ar = data.draw(sparse_matrix())
        ni = data.draw(st.integers(1, A.nrows))
        nj = data.draw(st.integers(1, A.ncols))
        rows = data.draw(
            st.lists(st.integers(0, A.nrows - 1), min_size=ni, max_size=ni)
        )
        cols = data.draw(
            st.lists(st.integers(0, A.ncols - 1), min_size=nj, max_size=nj)
        )
        C = grb.Matrix(grb.INT64, ni, nj)
        Cr = RefMatrix(grb.INT64, ni, nj)
        grb.matrix_extract(C, None, None, A, rows, cols)
        ref_extract_matrix(Cr, None, None, Ar, rows, cols)
        assert_matrix_equals_ref(C, Cr)

    @given(scene=matrix_op_scene(), value=st.integers(-5, 5))
    @settings(**SETTINGS)
    def test_assign_scalar(self, fresh_context, scene, value):
        C, _, _, (mg, mr), flags, accum = scene
        nrows, ncols = C[0].shape
        rows = list(range(0, nrows, 2))
        cols = list(range(0, ncols, 2))
        grb.matrix_assign_scalar(
            C[0], mg, accum, value, rows, cols, _desc(flags)
        )
        ref_assign_scalar_matrix(
            C[1], mr, accum, np.int64(value), rows, cols, **flags
        )
        assert_matrix_equals_ref(C[0], C[1])

    @given(data=st.data())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_kronecker(self, fresh_context, data):
        A, Ar = data.draw(sparse_matrix(max_dim=4))
        B, Br = data.draw(sparse_matrix(max_dim=4))
        C = grb.Matrix(grb.INT64, A.nrows * B.nrows, A.ncols * B.ncols)
        Cr = RefMatrix(grb.INT64, C.nrows, C.ncols)
        op = binary.TIMES[grb.INT64]
        grb.kronecker(C, None, None, op, A, B)
        ref_kronecker(Cr, None, None, op, Ar, Br)
        assert_matrix_equals_ref(C, Cr)
