"""Uniform error-surface checks across ALL operations.

Section V requires every method to validate its arguments and return
without changes on an API error; this file sweeps the entire operation
surface with the same malformed-argument patterns rather than trusting
each operation's individual tests to remember every case.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, index_unary, unary

S = predefined.PLUS_TIMES[grb.INT64]


def _m(r=3, c=3):
    return grb.Matrix(grb.INT64, r, c)


def _v(n=3):
    return grb.Vector(grb.INT64, n)


#: (name, callable(C, A, B)) — every matrix-output operation with a
#: standard (C, Mask, accum, ..., desc) shape
MATRIX_OPS = [
    ("mxm", lambda C, A, B: grb.mxm(C, None, None, S, A, B)),
    ("ewise_add", lambda C, A, B: grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B)),
    ("ewise_mult", lambda C, A, B: grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, B)),
    ("ewise_union", lambda C, A, B: grb.ewise_union(C, None, None, binary.PLUS[grb.INT64], A, 0, B, 0)),
    ("apply", lambda C, A, B: grb.apply(C, None, None, unary.IDENTITY[grb.INT64], A)),
    ("select", lambda C, A, B: grb.select(C, None, None, index_unary.TRIL, A, 0)),
    ("transpose", lambda C, A, B: grb.transpose(C, None, None, A)),
    ("extract", lambda C, A, B: grb.matrix_extract(C, None, None, A, grb.ALL, grb.ALL)),
    ("assign", lambda C, A, B: grb.matrix_assign(C, None, None, A, grb.ALL, grb.ALL)),
    # argument validation precedes the dimension check, so the 3x3 output
    # is fine for every malformed-argument case this file sweeps
    ("kronecker", lambda C, A, B: grb.kronecker(C, None, None, binary.TIMES[grb.INT64], A, B)),
]


@pytest.mark.parametrize("name,op", MATRIX_OPS, ids=[n for n, _ in MATRIX_OPS])
class TestUniformMatrixErrors:
    def test_null_output_rejected(self, name, op):
        with pytest.raises((grb.NullPointer, grb.InvalidValue)):
            op(None, _m(), _m())

    def test_null_input_rejected(self, name, op):
        with pytest.raises((grb.NullPointer, grb.InvalidValue)):
            op(_m(), None, _m())

    def test_freed_output_rejected(self, name, op):
        C = _m()
        C.free()
        with pytest.raises(grb.UninitializedObject):
            op(C, _m(), _m())

    def test_freed_input_rejected(self, name, op):
        A = _m()
        A.free()
        with pytest.raises(grb.UninitializedObject):
            op(_m(), A, _m())

    def test_api_error_leaves_output_unchanged(self, name, op):
        C = grb.Matrix.from_coo(grb.INT64, 3, 3, [1], [1], [42])
        A = _m()
        A.free()
        with pytest.raises(grb.GraphBLASError):
            op(C, A, _m())
        assert {(i, j): int(v) for i, j, v in C} == {(1, 1): 42}

    def test_nonblocking_api_error_is_immediate(self, name, op):
        grb.init(grb.Mode.NONBLOCKING)
        A = _m()
        A.free()
        with pytest.raises(grb.GraphBLASError):
            op(_m(), A, _m())
        assert grb.queue_stats()["enqueued"] == 0


VECTOR_OPS = [
    ("mxv", lambda w, u: grb.mxv(w, None, None, S, _m(), u)),
    ("vxm", lambda w, u: grb.vxm(w, None, None, S, u, _m())),
    ("ewise_add_v", lambda w, u: grb.ewise_add(w, None, None, binary.PLUS[grb.INT64], u, u)),
    ("apply_v", lambda w, u: grb.apply(w, None, None, unary.IDENTITY[grb.INT64], u)),
    ("extract_v", lambda w, u: grb.vector_extract(w, None, None, u, grb.ALL)),
    ("assign_v", lambda w, u: grb.vector_assign(w, None, None, u, grb.ALL)),
    ("reduce_v", lambda w, u: grb.reduce_to_vector(w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), _m())),
]


@pytest.mark.parametrize("name,op", VECTOR_OPS, ids=[n for n, _ in VECTOR_OPS])
class TestUniformVectorErrors:
    def test_null_output_rejected(self, name, op):
        with pytest.raises((grb.NullPointer, grb.InvalidValue)):
            op(None, _v())

    def test_freed_output_rejected(self, name, op):
        w = _v()
        w.free()
        with pytest.raises(grb.UninitializedObject):
            op(w, _v())


class TestMaskErrorsEverywhere:
    """Wrong-shaped masks must be rejected by every masked operation."""

    @pytest.mark.parametrize(
        "call",
        [
            lambda M: grb.mxm(_m(), M, None, S, _m(), _m()),
            lambda M: grb.ewise_add(_m(), M, None, binary.PLUS[grb.INT64], _m(), _m()),
            lambda M: grb.apply(_m(), M, None, unary.IDENTITY[grb.INT64], _m()),
            lambda M: grb.transpose(_m(), M, None, _m(3, 3)),
            lambda M: grb.matrix_extract(_m(), M, None, _m(), grb.ALL, grb.ALL),
            lambda M: grb.matrix_assign_scalar(_m(), M, None, 1, grb.ALL, grb.ALL),
            lambda M: grb.select(_m(), M, None, index_unary.TRIL, _m(), 0),
        ],
    )
    def test_wrong_shape_mask(self, call):
        with pytest.raises(grb.DimensionMismatch):
            call(grb.Matrix(grb.BOOL, 2, 5))

    @pytest.mark.parametrize(
        "call",
        [
            lambda M: grb.mxv(_v(), M, None, S, _m(), _v()),
            lambda M: grb.vxm(_v(), M, None, S, _v(), _m()),
            lambda M: grb.vector_assign_scalar(_v(), M, None, 1, grb.ALL),
        ],
    )
    def test_wrong_size_vector_mask(self, call):
        with pytest.raises(grb.DimensionMismatch):
            call(grb.Vector(grb.BOOL, 9))

    def test_matrix_mask_on_vector_output(self):
        with pytest.raises(grb.DimensionMismatch):
            grb.mxv(_v(), grb.Matrix(grb.BOOL, 3, 3), None, S, _m(), _v())


class TestAccumErrorsEverywhere:
    @pytest.mark.parametrize(
        "call",
        [
            lambda acc: grb.mxm(_m(), None, acc, S, _m(), _m()),
            lambda acc: grb.ewise_add(_m(), None, acc, binary.PLUS[grb.INT64], _m(), _m()),
            lambda acc: grb.apply(_m(), None, acc, unary.IDENTITY[grb.INT64], _m()),
            lambda acc: grb.matrix_assign_scalar(_m(), None, acc, 1, grb.ALL, grb.ALL),
        ],
    )
    def test_non_binaryop_accum_rejected(self, call):
        with pytest.raises(grb.InvalidValue):
            call("plus")

    def test_udt_accum_domain_mismatch(self):
        T = grb.powerset_type()
        union = grb.binary_op_new(
            lambda a, b: a | b, T, T, T, name="u"
        )
        with pytest.raises(grb.DomainMismatch):
            grb.mxm(_m(), None, union, S, _m(), _m())
