"""Multi-threaded span integrity (observability under the parallel scheduler).

With ``set_num_threads(4)`` the planner dispatches hazard-free DAG levels
onto the shared thread pool, so op spans open and close on worker
threads.  The invariants under test:

* every scheduled node records **exactly one** op span, no matter which
  thread ran it (drain-time wrapping — submit-time wrapping would lose
  the planner's rewrites);
* a fused pair is one node → one span, carrying its ``fused_of``
  provenance exactly once;
* spans from worker threads land in the same sink with correct
  thread attribution, and the Chrome exporter names each thread.

Inputs are built (and flushed) *before* each captured region: the point
is one wide drain of hazard-free ops, not a string of build-forced
single-op drains.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import obs
from repro.parallel import get_num_threads, set_num_threads

from tests.conftest import random_matrix


@pytest.fixture(autouse=True)
def four_threads(monkeypatch):
    # the CI container may expose a single CPU; the clamp in
    # set_num_threads would silently keep the pool serial
    monkeypatch.setattr("os.cpu_count", lambda: 4)
    set_num_threads(4)
    yield
    set_num_threads(1)


def _prepared_mxms(rng, k: int):
    """k hazard-free mxm triples with inputs already built and flushed."""
    mats = []
    for _ in range(k):
        A = random_matrix(rng, 12, 12, 0.4)
        B = random_matrix(rng, 12, 12, 0.4)
        C = grb.Matrix(grb.INT64, 12, 12)
        mats.append((A, B, C))
    grb.wait()  # builds must not force drains inside the captured region
    return mats


def _submit_mxms(mats):
    s = grb.PLUS_TIMES[grb.INT64]
    for A, B, C in mats:
        grb.mxm(C, None, None, s, A, B)


class TestSpanPerNode:
    def test_every_scheduled_node_one_span(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        assert get_num_threads() == 4
        K = 6
        mats = _prepared_mxms(rng, K)
        with obs.capture() as cap:
            _submit_mxms(mats)
            grb.wait()
        mxm_spans = [sp for sp in cap.spans_of("op") if sp.label == "mxm"]
        assert len(mxm_spans) == K
        assert all(sp.deferred for sp in mxm_spans)
        # one span per executed op: the queue agrees
        qd = cap.queue_delta()
        assert qd["executed"] == len(cap.spans_of("op")) == K
        assert qd["drains"] == 1
        assert qd["max_width"] >= K  # one hazard-free level
        assert all(C.nvals() >= 0 for _, _, C in mats)

    def test_spans_span_multiple_threads(self, rng):
        import threading

        grb.init(grb.Mode.NONBLOCKING)
        # nodes heavy enough that pool workers overlap instead of one
        # idle worker draining the whole level; whether a second worker
        # actually wins a task is scheduler timing, so retry a few times
        tids: set[int] = set()
        for attempt in range(4):
            mats = []
            for _ in range(8):
                A = random_matrix(rng, 80, 80, 0.3)
                B = random_matrix(rng, 80, 80, 0.3)
                C = grb.Matrix(grb.INT64, 80, 80)
                mats.append((A, B, C))
            grb.wait()
            with obs.capture() as cap:
                _submit_mxms(mats)
                grb.wait()
            mxm_spans = [sp for sp in cap.spans_of("op") if sp.label == "mxm"]
            assert len(mxm_spans) == 8  # integrity holds on every attempt
            tids = {sp.tid for sp in mxm_spans}
            assert threading.main_thread().ident not in tids  # ran on the pool
            assert all(isinstance(sp.thread, str) and sp.thread for sp in mxm_spans)
            if len(tids) >= 2:
                break
        assert len(tids) >= 2, f"all spans on one thread after retries: {tids}"

    def test_no_span_lost_or_duplicated_across_runs(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        for round_ in range(3):
            mats = _prepared_mxms(rng, 5)
            with obs.capture() as cap:
                _submit_mxms(mats)
                grb.wait()
            sids = [sp.sid for sp in cap.spans]
            assert len(sids) == len(set(sids))
            mxm = [sp for sp in cap.spans_of("op") if sp.label == "mxm"]
            assert len(mxm) == 5, f"round {round_}: {len(mxm)} spans"

    def test_kernel_spans_parent_their_op_on_worker_threads(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        mats = _prepared_mxms(rng, 6)
        with obs.capture() as cap:
            _submit_mxms(mats)
            grb.wait()
        ops = {sp.sid: sp for sp in cap.spans_of("op")}
        kernels = cap.spans_of("kernel")
        assert kernels, "mxm must invoke spgemm kernels"
        for k in kernels:
            assert k.parent in ops, f"kernel span {k.label} has no op parent"
            parent = ops[k.parent]
            assert parent.tid == k.tid, "kernel ran on a different thread than its op"


class TestFusionProvenanceUnderThreads:
    def _prepared_pairs(self, rng, k: int):
        mats = []
        for _ in range(k):
            A = random_matrix(rng, 8, 8, 0.4)
            C = grb.Matrix(grb.INT64, 8, 8)
            mats.append((A, C))
        grb.wait()
        return mats

    def _submit_pairs(self, mats):
        s = grb.PLUS_TIMES[grb.INT64]
        for A, C in mats:
            grb.mxm(C, None, None, s, A, A)
            grb.apply(C, None, None, grb.AINV[grb.INT64], C)  # in-place: fusable

    def test_each_fused_pair_records_provenance_once(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        K = 4
        mats = self._prepared_pairs(rng, K)
        with obs.capture() as cap:
            self._submit_pairs(mats)
            grb.wait()
        assert cap.queue_delta()["fused"] == K
        fused_spans = [
            sp for sp in cap.spans_of("op") if "fused_of" in sp.attrs
        ]
        assert len(fused_spans) == K  # one span per fused node, not per op
        for sp in fused_spans:
            assert sp.label == "mxm+apply[fused]"
            assert sp.attrs["fused_of"] == ["mxm", "apply"]
        # the constituent ops must NOT have their own spans
        labels = [sp.label for sp in cap.spans_of("op")]
        assert "mxm" not in labels and "apply" not in labels

    def test_fused_results_match_blocking(self, rng):
        set_num_threads(1)
        mats_b = self._prepared_pairs(rng, 3)
        self._submit_pairs(mats_b)
        want = [C.extract_tuples() for _, C in mats_b]

        from repro import context
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        set_num_threads(4)
        rng2 = np.random.default_rng(20170529)
        mats = self._prepared_pairs(rng2, 3)
        with obs.capture():
            self._submit_pairs(mats)
            grb.wait()
        for (_, C), w in zip(mats, want):
            got = C.extract_tuples()
            for g, ww in zip(got, w):
                assert np.array_equal(g, ww)


class TestPoolCounters:
    def test_pool_utilization_recorded(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        mats = _prepared_mxms(rng, 8)
        with obs.capture() as cap:
            _submit_mxms(mats)
            grb.wait()
        pd = cap.pool_delta()
        assert pd["submitted"] >= 2  # a wide level went through the pool
        assert pd["completed"] == pd["submitted"]
        assert pd["workers"] == 4
        assert pd["busy_seconds"] >= 0.0
        assert cap.counters.get("pool.tasks", 0) == pd["submitted"]

    def test_chrome_trace_names_worker_threads(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        mats = _prepared_mxms(rng, 8)
        with obs.capture() as cap:
            _submit_mxms(mats)
            grb.wait()
        doc = cap.chrome_trace()
        metas = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == {m["tid"] for m in metas}
        assert len(metas) >= 2  # main thread + at least one worker
