"""Bit-identity of the sharded multi-process backend.

Mirrors the planner's randomized-sequence equivalence suite: the same
data-only programs run once blocking (the oracle) and once nonblocking
under the ``processes`` backend — 2-worker pool, threshold 0 so every
shippable kernel actually ships, and a 2×2 grid so integer SpGEMM
exercises the 2D tile merge.  Results must match the oracle
bit-for-bit, dtypes included: sharding is an execution strategy, never
a semantic (section III-B).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import context, parallel

from tests.conftest import random_matrix, random_vector
from tests.test_planner import _random_program, _run_program


def _run_processes(steps, seed: int):
    parallel.set_backend("processes")
    parallel.set_parallel_threshold(0)
    parallel.set_shard_workers(2)
    parallel.set_shard_grid((2, 2))
    try:
        return _run_program(steps, seed, nonblocking=True)
    finally:
        parallel.set_backend("threads")
        parallel.set_parallel_threshold(parallel.config.DEFAULT_THRESHOLD)
        parallel.set_shard_grid(None)


@pytest.mark.parametrize("seed", range(20))
def test_sharded_sequences_bit_identical(seed):
    """20 randomized sequences (masks, accumulators, REPLACE, transposes):
    the processes backend must equal blocking mode bit-for-bit."""
    steps = _random_program(seed)
    want = _run_program(steps, seed, nonblocking=False)
    got = _run_processes(steps, seed)
    for w_t, g_t in zip(want, got):
        for w_arr, g_arr in zip(w_t, g_t):
            assert np.array_equal(w_arr, g_arr), f"seed {seed} diverged"
            assert w_arr.dtype == g_arr.dtype


def _mxm_both_ways(rng, domain, grid):
    """(blocking tuples, sharded tuples, tasks shipped) for one mxm."""
    from repro.shard import pool_stats

    n = 48
    At = random_matrix(rng, n, n, 0.25, domain=domain).extract_tuples()
    Bt = random_matrix(rng, n, n, 0.25, domain=domain).extract_tuples()
    sr = grb.PLUS_TIMES[domain]

    def run(sharded: bool):
        context._reset()
        if sharded:
            grb.init(grb.Mode.NONBLOCKING)
            parallel.set_backend("processes")
            parallel.set_parallel_threshold(0)
            parallel.set_shard_workers(2)
            parallel.set_shard_grid(grid)
        A = grb.Matrix.from_coo(domain, n, n, *At)
        B = grb.Matrix.from_coo(domain, n, n, *Bt)
        C = grb.Matrix(domain, n, n)
        grb.mxm(C, None, None, sr, A, B)
        if sharded:
            grb.wait()
        return C.extract_tuples()

    want = run(sharded=False)
    before = pool_stats()["tasks_done"]
    try:
        got = run(sharded=True)
    finally:
        parallel.set_backend("threads")
        parallel.set_parallel_threshold(parallel.config.DEFAULT_THRESHOLD)
        parallel.set_shard_grid(None)
    shipped = pool_stats()["tasks_done"] - before
    return want, got, shipped


def test_int_mxm_tile_merge_bit_identical(rng):
    """Integer SpGEMM under a 2×2 grid takes the k-split tile-merge path
    (4 tasks, semiring-add of partial products) and stays exact."""
    want, got, shipped = _mxm_both_ways(rng, grb.INT64, (2, 2))
    assert shipped == 4
    for w_arr, g_arr in zip(want, got):
        assert np.array_equal(w_arr, g_arr)
        assert w_arr.dtype == g_arr.dtype


def test_float_mxm_stays_stripes_and_bitwise(rng):
    """FP64 SpGEMM must refuse the k-split (float add is not associative)
    and still match blocking bitwise via row stripes alone."""
    want, got, shipped = _mxm_both_ways(rng, grb.FP64, (2, 2))
    assert shipped == 2  # the requested pc=2 collapses to stripes-only
    for w_arr, g_arr in zip(want, got):
        assert np.array_equal(w_arr, g_arr)
        assert w_arr.dtype == g_arr.dtype


def test_mxv_vxm_reduce_bit_identical(rng):
    """The three non-mxm shippable kinds, masked and accumulated."""
    n = 40
    At = random_matrix(rng, n, n, 0.3, domain=grb.FP64).extract_tuples()
    ut = random_vector(rng, n, 0.5, domain=grb.FP64).extract_tuples()
    mt = random_vector(rng, n, 0.5, domain=grb.FP64).extract_tuples()

    def run(sharded: bool):
        context._reset()
        if sharded:
            grb.init(grb.Mode.NONBLOCKING)
            parallel.set_backend("processes")
            parallel.set_parallel_threshold(0)
            parallel.set_shard_workers(2)
        A = grb.Matrix.from_coo(grb.FP64, n, n, *At)
        u = grb.Vector.from_coo(grb.FP64, n, *ut)
        m = grb.Vector.from_coo(grb.FP64, n, *mt)
        sr = grb.PLUS_TIMES[grb.FP64]
        w = grb.Vector(grb.FP64, n)
        x = grb.Vector(grb.FP64, n)
        r = grb.Vector(grb.FP64, n)
        grb.mxv(w, m, None, sr, A, u, grb.DESC_SC)
        grb.vxm(x, None, grb.PLUS[grb.FP64], sr, u, A, grb.DESC_T1)
        grb.reduce(r, None, None, grb.PLUS_MONOID[grb.FP64], A)
        if sharded:
            grb.wait()
        return [o.extract_tuples() for o in (w, x, r)]

    want = run(sharded=False)
    try:
        got = run(sharded=True)
    finally:
        parallel.set_backend("threads")
        parallel.set_parallel_threshold(parallel.config.DEFAULT_THRESHOLD)
    for w_t, g_t in zip(want, got):
        for w_arr, g_arr in zip(w_t, g_t):
            assert np.array_equal(w_arr, g_arr)
            assert w_arr.dtype == g_arr.dtype
