"""``GrB_mxv`` and ``GrB_vxm`` (Table II rows 2-3)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary

from tests.conftest import random_matrix, random_vector


class TestMxv:
    def test_identity_times_vector(self):
        A = grb.Matrix.from_dense(grb.INT64, np.eye(3, dtype=int))
        u = grb.Vector.from_coo(grb.INT64, 3, [0, 2], [5, 7])
        w = grb.Vector(grb.INT64, 3)
        grb.mxv(w, None, None, predefined.PLUS_TIMES[grb.INT64], A, u)
        assert w.to_dense(0).tolist() == [5, 0, 7]

    def test_random_vs_numpy(self, rng):
        for _ in range(5):
            m, n = rng.integers(2, 15, 2)
            A = random_matrix(rng, m, n, 0.4)
            u = random_vector(rng, n, 0.5)
            w = grb.Vector(grb.INT64, m)
            grb.mxv(w, None, None, predefined.PLUS_TIMES[grb.INT64], A, u)
            assert (w.to_dense(0) == A.to_dense(0) @ u.to_dense(0)).all()

    def test_result_pattern_follows_intersections(self):
        # rows with no stored intersection produce NO output element
        A = grb.Matrix.from_coo(grb.INT64, 3, 3, [0], [0], [5])
        u = grb.Vector.from_coo(grb.INT64, 3, [1], [9])  # misses column 0
        w = grb.Vector(grb.INT64, 3)
        grb.mxv(w, None, None, predefined.PLUS_TIMES[grb.INT64], A, u)
        assert w.nvals() == 0

    def test_transpose_descriptor(self, rng):
        A = random_matrix(rng, 4, 6, 0.5)
        u = random_vector(rng, 4, 0.6)
        w = grb.Vector(grb.INT64, 6)
        grb.mxv(w, None, None, predefined.PLUS_TIMES[grb.INT64], A, u, grb.DESC_T0)
        assert (w.to_dense(0) == A.to_dense(0).T @ u.to_dense(0)).all()

    def test_dimension_errors(self):
        A = grb.Matrix(grb.INT64, 3, 4)
        with pytest.raises(grb.DimensionMismatch):
            grb.mxv(
                grb.Vector(grb.INT64, 3), None, None,
                predefined.PLUS_TIMES[grb.INT64], A, grb.Vector(grb.INT64, 3),
            )
        with pytest.raises(grb.DimensionMismatch):
            grb.mxv(
                grb.Vector(grb.INT64, 4), None, None,
                predefined.PLUS_TIMES[grb.INT64], A, grb.Vector(grb.INT64, 4),
            )

    def test_mask_and_accum(self, rng):
        A = random_matrix(rng, 5, 5, 0.6)
        u = random_vector(rng, 5, 0.6)
        w = grb.Vector.from_coo(grb.INT64, 5, [0, 1, 2, 3, 4], [100] * 5)
        m = grb.Vector.from_coo(grb.BOOL, 5, [0, 2], [True, True])
        grb.mxv(w, m, binary.PLUS[grb.INT64], predefined.PLUS_TIMES[grb.INT64], A, u)
        prod = A.to_dense(0) @ u.to_dense(0)
        dense = w.to_dense(0)
        a_pat = {(i, j) for i, j, _ in A}
        u_pat = {i for i, _ in u}
        t_pat = {i for i in range(5) if any((i, k) in a_pat for k in u_pat)}
        for i in range(5):
            if i in (0, 2) and i in t_pat:
                assert dense[i] == 100 + prod[i]
            else:
                assert dense[i] == 100


class TestVxm:
    def test_row_vector_times_matrix(self, rng):
        A = random_matrix(rng, 5, 7, 0.5)
        u = random_vector(rng, 5, 0.5)
        w = grb.Vector(grb.INT64, 7)
        grb.vxm(w, None, None, predefined.PLUS_TIMES[grb.INT64], u, A)
        assert (w.to_dense(0) == u.to_dense(0) @ A.to_dense(0)).all()

    def test_transpose_descriptor_inp1(self, rng):
        A = random_matrix(rng, 5, 7, 0.5)
        u = random_vector(rng, 7, 0.5)
        w = grb.Vector(grb.INT64, 5)
        grb.vxm(w, None, None, predefined.PLUS_TIMES[grb.INT64], u, A, grb.DESC_T1)
        assert (w.to_dense(0) == u.to_dense(0) @ A.to_dense(0).T).all()

    def test_vxm_equals_mxv_of_transpose(self, rng):
        A = random_matrix(rng, 6, 6, 0.5)
        u = random_vector(rng, 6, 0.5)
        w1 = grb.Vector(grb.INT64, 6)
        w2 = grb.Vector(grb.INT64, 6)
        grb.vxm(w1, None, None, predefined.PLUS_TIMES[grb.INT64], u, A)
        grb.mxv(w2, None, None, predefined.PLUS_TIMES[grb.INT64], A, u, grb.DESC_T0)
        assert (w1.to_dense(0) == w2.to_dense(0)).all()
        i1, v1 = w1.extract_tuples()
        i2, v2 = w2.extract_tuples()
        assert i1.tolist() == i2.tolist()

    def test_noncommutative_multiply_order(self):
        # vxm must compute u(i) ⊗ A(i,j), not A(i,j) ⊗ u(i)
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0], [1], [3])
        u = grb.Vector.from_coo(grb.INT64, 2, [0], [10])
        s = grb.semiring_new(
            grb.monoid("GrB_PLUS_MONOID_INT64"), binary.FIRST[grb.INT64]
        )
        w = grb.Vector(grb.INT64, 2)
        grb.vxm(w, None, None, s, u, A)
        assert w.extract_element(1) == 10  # FIRST(u, a) = u

        s2 = grb.semiring_new(
            grb.monoid("GrB_PLUS_MONOID_INT64"), binary.SECOND[grb.INT64]
        )
        grb.vxm(w, None, None, s2, u, A)
        assert w.extract_element(1) == 3  # SECOND(u, a) = a

    def test_bfs_step_lor_land(self):
        # one frontier expansion: the core of every BFS
        A = grb.Matrix.from_coo(
            grb.BOOL, 4, 4, [0, 1, 2], [1, 2, 3], [True] * 3
        )
        f = grb.Vector.from_coo(grb.BOOL, 4, [0], [True])
        grb.vxm(f, None, None, predefined.LOR_LAND[grb.BOOL], f, A)
        assert {i for i, v in f if v} == {1}

    def test_dimension_errors(self):
        A = grb.Matrix(grb.INT64, 3, 4)
        with pytest.raises(grb.DimensionMismatch):
            grb.vxm(
                grb.Vector(grb.INT64, 4), None, None,
                predefined.PLUS_TIMES[grb.INT64], grb.Vector(grb.INT64, 4), A,
            )
