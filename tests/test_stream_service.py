"""The streaming service surface: ``stream_mutate`` end-to-end, the
incremental-handle lifecycle behind ``algorithm`` requests, and the
loadgen helpers (tolerant replay diffing, per-kind latency breakdown)
the streaming workload mixes depend on."""

from __future__ import annotations

import numpy as np
import pytest

from repro import algorithms
from repro.containers import Matrix
from repro.service import (
    SHARED_PREFIX,
    SHARED_SESSION,
    Service,
    ServiceConfig,
)
from repro.service.errors import BadRequest, ObjectNotFound
from repro.service.loadgen import _approx_eq, diff_results, timing_summary
from repro.types import FP64

_G = {
    "name": "G", "kind": "matrix", "dtype": "FP64", "shape": [8, 8],
    "entries": [[0, 1, 1.0], [1, 2, 2.0], [2, 0, 3.0]],
}


@pytest.fixture
def svc():
    with Service(ServiceConfig(workers=2, cache=True)) as s:
        yield s


class TestStreamMutate:
    def test_shared_roundtrip(self, svc):
        svc.request(SHARED_SESSION, "define", _G)
        rsp = svc.request(SHARED_SESSION, "stream_mutate", {
            "graph": "G",
            "set": [[3, 4, 9.0], [0, 1, 5.0]],
            "remove": [[2, 0]],
        })
        assert rsp["accepted"] == {"set": 2, "remove": 1}
        sess = svc.open_session("r")
        tup = svc.request(
            sess, "query", {"name": SHARED_PREFIX + "G", "what": "tuples"}
        )
        assert sorted(zip(tup["rows"], tup["cols"], tup["values"])) == [
            (0, 1, 5.0), (1, 2, 2.0), (3, 4, 9.0)
        ]

    def test_session_private_graph(self, svc):
        sess = svc.open_session("mine")
        svc.request(sess, "define", _G)
        svc.request(sess, "stream_mutate", {
            "graph": "G", "set": [[5, 5, 1.5]], "remove": [],
        })
        tup = svc.request(sess, "query", {"name": "G", "what": "tuples"})
        assert (5, 5, 1.5) in set(zip(tup["rows"], tup["cols"], tup["values"]))

    def test_rejects_non_matrix_and_unknown(self, svc):
        sess = svc.open_session("bad")
        svc.request(sess, "define", {
            "name": "v", "kind": "vector", "dtype": "FP64",
            "shape": [4], "entries": [[0, 1.0]],
        })
        with pytest.raises(BadRequest):
            svc.request(sess, "stream_mutate",
                        {"graph": "v", "set": [[0, 0, 1.0]], "remove": []})
        with pytest.raises(ObjectNotFound):
            svc.request(sess, "stream_mutate",
                        {"graph": "nope", "set": [], "remove": []})

    def test_mutation_publishes_and_reports_delta(self, svc):
        svc.request(SHARED_SESSION, "define", _G)
        before = svc.stats()["snapshots"]["published"]
        svc.request(SHARED_SESSION, "stream_mutate", {
            "graph": "G", "set": [[4, 4, 1.0]], "remove": [],
        })
        assert svc.stats()["snapshots"]["published"] == before + 1


class TestHandleLifecycle:
    def _pagerank(self, svc, sess):
        return svc.request(sess, "algorithm", {
            "algo": "pagerank", "graph": SHARED_PREFIX + "G", "args": {},
        })

    def test_handles_create_advance_and_serve(self, svc):
        svc.request(SHARED_SESSION, "define", _G)
        sess = svc.open_session("h")
        self._pagerank(svc, sess)
        st = svc.stats()["streams"]
        assert st["created"] == 1
        svc.request(SHARED_SESSION, "stream_mutate", {
            "graph": "G", "set": [[3, 0, 1.0]], "remove": [],
        })
        served = self._pagerank(svc, sess)["result"]
        st = svc.stats()["streams"]
        assert st["advanced"] >= 1
        assert st["served"] >= 1

        tup = svc.request(
            sess, "query", {"name": SHARED_PREFIX + "G", "what": "tuples"}
        )
        scratch = algorithms.pagerank(Matrix.from_coo(
            FP64, 8, 8,
            np.asarray(tup["rows"]), np.asarray(tup["cols"]),
            np.asarray(tup["values"], dtype=np.float64),
        ))
        dense = np.zeros(8)
        dense[np.asarray(served["indices"], dtype=np.int64)] = served["values"]
        assert np.allclose(dense, scratch, rtol=0, atol=1e-5)

    def test_point_update_drops_handles(self, svc):
        # a plain update mutates without an edge delta: the handle cannot
        # advance and must be dropped, never served stale
        svc.request(SHARED_SESSION, "define", _G)
        sess = svc.open_session("d")
        self._pagerank(svc, sess)
        assert svc.stats()["streams"]["handles"] == 1
        svc.request(SHARED_SESSION, "update", {
            "graph": "G", "set": [[6, 6, 1.0]], "remove": [],
        })
        st = svc.stats()["streams"]
        assert st["dropped"] >= 1
        assert st["handles"] == 0

    def test_free_drops_handles(self, svc):
        svc.request(SHARED_SESSION, "define", _G)
        sess = svc.open_session("f")
        self._pagerank(svc, sess)
        svc.request(SHARED_SESSION, "free", {"name": "G"})
        assert svc.stats()["streams"]["handles"] == 0


class TestApproxEq:
    def test_float_tolerance_is_floats_only(self):
        assert _approx_eq(1.0, 1.0 + 5e-6)
        assert not _approx_eq(1.0, 1.0 + 5e-5)
        # ints and strings stay exact: a count drift must never hide
        assert not _approx_eq(3, 4)
        assert not _approx_eq("a", "b")
        # mixed int/float pairs take the tolerance (JSON encoders may
        # round-trip 1.0 as 1), but non-numerics never do
        assert _approx_eq(1, 1.0 + 5e-6)
        assert not _approx_eq("1.0", 1.0)

    def test_nan_and_inf(self):
        assert _approx_eq(float("nan"), float("nan"))
        assert _approx_eq(float("inf"), float("inf"))
        assert not _approx_eq(float("inf"), float("-inf"))
        assert not _approx_eq(float("inf"), 1.0)

    def test_nested_structures(self):
        a = {"v": [1.0, 2.0, {"x": 3.0}], "n": 7}
        b = {"v": [1.0 + 1e-7, 2.0, {"x": 3.0 - 1e-7}], "n": 7}
        assert _approx_eq(a, b)
        assert not _approx_eq(a, {"v": a["v"], "n": 8})
        assert not _approx_eq([1.0], [1.0, 2.0])
        assert not _approx_eq({"a": 1}, {"b": 1})

    def test_diff_results_uses_the_tolerance(self):
        live = [[{"result": {"values": [0.5, 0.25]}}]]
        replay = [[{"result": {"values": [0.5 + 1e-7, 0.25]}}]]
        assert diff_results(live, replay) == []
        replay = [[{"result": {"values": [0.6, 0.25]}}]]
        assert len(diff_results(live, replay)) == 1


class TestTimingByKind:
    def _row(self, total):
        return {"timing": {
            "queue_wait_us": 1.0, "issue_us": 2.0,
            "drain_share_us": 3.0, "total_us": total,
        }}

    def test_split_follows_the_submitted_kinds(self):
        results = [[self._row(10.0), self._row(100.0), self._row(20.0)]]
        streams = [[("query", {}), ("stream_mutate", {}), ("algorithm", {})]]
        out = timing_summary(results, streams)
        assert out["count"] == 3
        kinds = out["by_kind"]
        assert kinds["read"]["count"] == 2
        assert kinds["mutate"]["count"] == 1
        assert kinds["mutate"]["total_us"]["p50"] == 100.0
        assert kinds["read"]["total_us"]["p99"] == 20.0

    def test_without_streams_no_breakdown(self):
        out = timing_summary([[self._row(10.0)]])
        assert "by_kind" not in out
