"""Convenience helpers (equality, norms, symmetry) and the execution tracer."""

import numpy as np
import pytest

import repro as grb
from repro.execution import trace
from repro.utils import (
    is_symmetric,
    matrices_equal,
    norm_max,
    norm_sum,
    pattern_equal,
    vectors_equal,
)

from tests.conftest import random_matrix, random_vector


class TestEquality:
    def test_equal_matrices(self, rng):
        A = random_matrix(rng, 5, 5, 0.5)
        assert matrices_equal(A, A.dup())

    def test_value_difference_detected(self, rng):
        A = random_matrix(rng, 5, 5, 0.5)
        B = A.dup()
        i, j, v = next(iter(B))
        B.set_element(i, j, int(v) + 1)
        assert not matrices_equal(A, B)

    def test_pattern_difference_detected(self, rng):
        A = random_matrix(rng, 5, 5, 0.3)
        B = A.dup()
        B.set_element(0, 0, 1) if (0, 0) not in {
            (i, j) for i, j, _ in A
        } else B.remove_element(0, 0)
        assert not matrices_equal(A, B)

    def test_explicit_zero_vs_absent(self):
        # "stored zero" and "undefined" are different contents
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0], [0], [0])
        B = grb.Matrix(grb.INT64, 2, 2)
        assert not matrices_equal(A, B)
        assert not pattern_equal(A, B)

    def test_shape_mismatch(self):
        assert not matrices_equal(
            grb.Matrix(grb.INT64, 2, 2), grb.Matrix(grb.INT64, 2, 3)
        )

    def test_type_strictness_toggle(self):
        A = grb.Matrix.from_coo(grb.INT32, 1, 1, [0], [0], [5])
        B = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [5])
        assert not matrices_equal(A, B)
        assert matrices_equal(A, B, check_type=False)

    def test_vectors(self, rng):
        u = random_vector(rng, 8, 0.5)
        assert vectors_equal(u, u.dup())
        v = u.dup()
        v.set_element(0, 99)
        assert not vectors_equal(u, v)

    def test_udt_equality(self):
        T = grb.powerset_type()
        u = grb.Vector(T, 2)
        u.build([0], [frozenset({1})])
        v = grb.Vector(T, 2)
        v.build([0], [frozenset({1})])
        assert vectors_equal(u, v)
        w = grb.Vector(T, 2)
        w.build([0], [frozenset({2})])
        assert not vectors_equal(u, w)


class TestNormsAndSymmetry:
    def test_norms(self):
        A = grb.Matrix.from_coo(grb.FP64, 2, 2, [0, 1], [1, 0], [-3.0, 4.0])
        assert norm_max(A) == 4.0
        assert norm_sum(A) == 7.0

    def test_empty_norms(self):
        A = grb.Matrix(grb.FP64, 2, 2)
        assert norm_max(A) == 0.0
        assert norm_sum(A) == 0.0

    def test_vector_norms(self):
        v = grb.Vector.from_coo(grb.FP64, 3, [0, 2], [-1.5, 2.0])
        assert norm_max(v) == 2.0
        assert norm_sum(v) == 3.5

    def test_symmetry(self):
        S = grb.Matrix.from_dense(grb.INT64, [[0, 2], [2, 0]])
        assert is_symmetric(S)
        N = grb.Matrix.from_dense(grb.INT64, [[0, 2], [3, 0]])
        assert not is_symmetric(N)
        assert is_symmetric(N, values=False)  # pattern is symmetric

    def test_nonsquare_never_symmetric(self):
        assert not is_symmetric(grb.Matrix(grb.INT64, 2, 3))


class TestTracer:
    def test_records_blocking_ops(self, rng):
        A = random_matrix(rng, 6, 6, 0.5)
        C = grb.Matrix(grb.INT64, 6, 6)
        with trace() as t:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.transpose(C, None, None, C)
        assert t.count("mxm") == 1
        assert t.count("transpose") == 1
        assert t.count() == 2
        assert all(not r.deferred for r in t.records)
        assert t.total_seconds() > 0

    def test_records_deferred_ops_and_elisions(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 6, 6, 0.5)
        C = grb.Matrix(grb.INT64, 6, 6)
        with trace() as t:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)  # dead
            grb.ewise_add(C, None, None, grb.PLUS[grb.INT64], A, A)
            grb.wait()
        assert t.count("eWiseAdd") == 1
        assert t.count("mxm") == 0  # elided: its thunk never ran
        assert t.elided == 1
        assert t.drains == 1
        assert all(r.deferred for r in t.records)

    def test_untraced_ops_not_recorded(self, rng):
        A = random_matrix(rng, 4, 4, 0.5)
        C = grb.Matrix(grb.INT64, 4, 4)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        with trace() as t:
            pass
        assert t.count() == 0

    def test_by_label_and_summary(self, rng):
        A = random_matrix(rng, 4, 4, 0.5)
        C = grb.Matrix(grb.INT64, 4, 4)
        with trace() as t:
            for _ in range(3):
                grb.apply(C, None, None, grb.IDENTITY[grb.INT64], A)
        agg = t.by_label()
        assert agg["apply"][0] == 3
        assert "apply" in t.summary() and "x3" in t.summary()

    def test_nested_trace_rejected(self):
        with trace():
            with pytest.raises(grb.InvalidValue):
                with trace():
                    pass

    def test_trace_is_reentrant_after_exit(self):
        with trace() as t1:
            pass
        with trace() as t2:
            pass
        assert t1.count() == 0 and t2.count() == 0
