"""Unit tests for the sorted-index-set primitives every kernel builds on."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro import _sparseutil as su
from repro.algebra import predefined

SETTINGS = dict(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

sorted_unique = st.lists(
    st.integers(0, 60), max_size=30, unique=True
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestFlatKeys:
    def test_round_trip(self):
        rows = np.array([0, 1, 2], dtype=np.int64)
        cols = np.array([5, 0, 3], dtype=np.int64)
        keys = su.flatten_keys(rows, cols, 7)
        r, c = su.unflatten_keys(keys, 7)
        assert r.tolist() == rows.tolist()
        assert c.tolist() == cols.tolist()

    def test_row_major_ordering(self):
        # flattening preserves (row, col) lexicographic order
        keys = su.flatten_keys(
            np.array([0, 0, 1]), np.array([0, 6, 0]), 7
        )
        assert (np.diff(keys) > 0).all()

    def test_capacity_guard(self):
        with pytest.raises(grb.info.InsufficientSpace):
            su.check_flat_capacity(2**31, 2**31)
        su.check_flat_capacity(2**30, 2**30)  # fine


class TestMembership:
    @given(a=sorted_unique, b=sorted_unique)
    @settings(**SETTINGS)
    def test_membership_matches_python_sets(self, a, b):
        got = su.membership(a, b)
        want = [int(x) in set(b.tolist()) for x in a]
        assert got.tolist() == want

    @given(a=sorted_unique, b=sorted_unique)
    @settings(**SETTINGS)
    def test_intersect_indices(self, a, b):
        ia, ib = su.intersect_indices(a, b)
        assert a[ia].tolist() == b[ib].tolist()
        assert set(a[ia].tolist()) == set(a.tolist()) & set(b.tolist())

    @given(a=sorted_unique, b=sorted_unique)
    @settings(**SETTINGS)
    def test_setdiff_mask(self, a, b):
        keep = su.setdiff_mask(a, b)
        assert set(a[keep].tolist()) == set(a.tolist()) - set(b.tolist())

    def test_empty_edge_cases(self):
        e = np.empty(0, dtype=np.int64)
        x = np.array([1, 2], dtype=np.int64)
        assert su.membership(x, e).tolist() == [False, False]
        assert su.membership(e, x).tolist() == []
        ia, ib = su.intersect_indices(e, x)
        assert len(ia) == 0 and len(ib) == 0


class TestUnionKeys:
    @given(a=sorted_unique, b=sorted_unique)
    @settings(**SETTINGS)
    def test_union_semantics(self, a, b):
        av = np.arange(1, len(a) + 1, dtype=np.int64)
        bv = -np.arange(1, len(b) + 1, dtype=np.int64)
        keys, vals = su.union_keys(
            a, av, b, bv, np.dtype(np.int64), lambda x, y: x + y
        )
        expect = {}
        for k, v in zip(a.tolist(), av.tolist()):
            expect[k] = v
        for k, v in zip(b.tolist(), bv.tolist()):
            expect[k] = expect.get(k, 0) + v if k in expect else v
        assert dict(zip(keys.tolist(), vals.tolist())) == expect
        assert (np.diff(keys) > 0).all() if len(keys) > 1 else True

    def test_result_never_aliases_inputs(self):
        a = np.array([1], dtype=np.int64)
        av = np.array([5], dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        keys, vals = su.union_keys(
            e, e.astype(np.int64), a, av, np.dtype(np.int64), lambda x, y: x
        )
        vals[0] = 99
        assert av[0] == 5  # defensive copy held


class TestSegmentReduce:
    def test_ufunc_path(self):
        vals = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        starts = np.array([0, 2], dtype=np.int64)
        out = su.segment_reduce(vals, starts, predefined.PLUS_MONOID[grb.INT64])
        assert out.tolist() == [3, 12]

    def test_generic_path_matches_ufunc(self, rng):
        vals = rng.integers(-5, 5, 30)
        starts = np.array([0, 7, 8, 20], dtype=np.int64)
        fast = su.segment_reduce(
            vals, starts, predefined.PLUS_MONOID[grb.INT64]
        )
        slow_monoid = grb.monoid_new(
            grb.binary_op_new(
                lambda a, b: a + b, grb.INT64, grb.INT64, grb.INT64,
                associative=True, commutative=True,
            ),
            0,
        )
        slow = su.segment_reduce(vals, starts, slow_monoid)
        assert fast.tolist() == slow.tolist()

    def test_min_reduce(self):
        vals = np.array([3.0, 1.0, 7.0, -2.0])
        starts = np.array([0, 2], dtype=np.int64)
        out = su.segment_reduce(vals, starts, predefined.MIN_MONOID[grb.FP64])
        assert out.tolist() == [1.0, -2.0]

    def test_empty(self):
        out = su.segment_reduce(
            np.empty(0), np.empty(0, dtype=np.int64),
            predefined.PLUS_MONOID[grb.FP64],
        )
        assert len(out) == 0


class TestRangesConcat:
    def test_basic(self):
        starts = np.array([10, 20], dtype=np.int64)
        counts = np.array([3, 2], dtype=np.int64)
        assert su.ranges_concat(starts, counts).tolist() == [10, 11, 12, 20, 21]

    def test_zero_counts_skipped(self):
        starts = np.array([5, 9, 100], dtype=np.int64)
        counts = np.array([2, 0, 1], dtype=np.int64)
        assert su.ranges_concat(starts, counts).tolist() == [5, 6, 100]

    def test_all_empty(self):
        assert len(su.ranges_concat(
            np.array([1, 2], dtype=np.int64), np.zeros(2, dtype=np.int64)
        )) == 0

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_matches_naive(self, data):
        n = data.draw(st.integers(0, 10))
        starts = np.array(
            data.draw(st.lists(st.integers(0, 50), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        counts = np.array(
            data.draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        want = []
        for s, c in zip(starts, counts):
            want.extend(range(s, s + c))
        assert su.ranges_concat(starts, counts).tolist() == want


class TestGroupStarts:
    def test_runs(self):
        keys = np.array([2, 2, 5, 7, 7, 7], dtype=np.int64)
        uniq, starts = su.group_starts(keys)
        assert uniq.tolist() == [2, 5, 7]
        assert starts.tolist() == [0, 2, 3]

    def test_all_unique(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        uniq, starts = su.group_starts(keys)
        assert uniq.tolist() == [1, 2, 3]
        assert starts.tolist() == [0, 1, 2]

    def test_empty(self):
        uniq, starts = su.group_starts(np.empty(0, dtype=np.int64))
        assert len(uniq) == 0 and len(starts) == 0
