"""``select`` and ``kronecker`` (the GrB 1.3/2.0 operations)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, index_unary

from tests.conftest import random_matrix


class TestSelect:
    def test_tril_strict(self, rng):
        A = random_matrix(rng, 6, 6, 0.6)
        L = grb.Matrix(grb.INT64, 6, 6)
        grb.select(L, None, None, index_unary.TRIL, A, -1)
        got = L.to_dense(0)
        expect = np.tril(A.to_dense(0), -1)
        assert (got == expect).all()

    def test_triu(self, rng):
        A = random_matrix(rng, 6, 6, 0.6)
        U = grb.Matrix(grb.INT64, 6, 6)
        grb.select(U, None, None, index_unary.TRIU, A, 1)
        assert (U.to_dense(0) == np.triu(A.to_dense(0), 1)).all()

    def test_diag_extraction(self, rng):
        A = random_matrix(rng, 5, 5, 0.8)
        D = grb.Matrix(grb.INT64, 5, 5)
        grb.select(D, None, None, index_unary.DIAG, A, 0)
        expect = np.diag(np.diag(A.to_dense(0)))
        assert (D.to_dense(0) == expect).all()

    def test_value_filter(self):
        A = grb.Matrix.from_dense(grb.INT64, [[5, -2], [0, 7]])
        P = grb.Matrix(grb.INT64, 2, 2)
        grb.select(P, None, None, index_unary.VALUEGT[grb.INT64], A, 0)
        assert {(i, j): int(v) for i, j, v in P} == {(0, 0): 5, (1, 1): 7}

    def test_select_preserves_values_and_domain(self):
        A = grb.Matrix.from_coo(grb.FP32, 2, 2, [1], [0], [2.5])
        C = grb.Matrix(grb.FP32, 2, 2)
        grb.select(C, None, None, index_unary.TRIL, A, 0)
        assert C.extract_element(1, 0) == np.float32(2.5)

    def test_select_vector(self):
        u = grb.Vector.from_coo(grb.INT64, 5, [0, 2, 4], [1, -1, 3])
        w = grb.Vector(grb.INT64, 5)
        grb.select(w, None, None, index_unary.VALUEGT[grb.INT64], u, 0)
        assert {i: int(v) for i, v in w} == {0: 1, 4: 3}

    def test_select_requires_indexunary(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            grb.select(A, None, None, binary.PLUS[grb.INT64], A, 0)


class TestKronecker:
    def test_matches_numpy_kron(self, rng):
        A = random_matrix(rng, 3, 2, 0.6)
        B = random_matrix(rng, 2, 4, 0.6)
        C = grb.Matrix(grb.INT64, 6, 8)
        grb.kronecker(C, None, None, binary.TIMES[grb.INT64], A, B)
        assert (C.to_dense(0) == np.kron(A.to_dense(0), B.to_dense(0))).all()

    def test_kron_with_semiring_uses_multiply(self, rng):
        A = random_matrix(rng, 2, 2, 0.8)
        B = random_matrix(rng, 2, 2, 0.8)
        C1 = grb.Matrix(grb.INT64, 4, 4)
        C2 = grb.Matrix(grb.INT64, 4, 4)
        grb.kronecker(C1, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        grb.kronecker(C2, None, None, binary.TIMES[grb.INT64], A, B)
        assert (C1.to_dense(0) == C2.to_dense(0)).all()

    def test_kron_pattern_is_product_of_patterns(self, rng):
        A = random_matrix(rng, 3, 3, 0.4)
        B = random_matrix(rng, 3, 3, 0.4)
        C = grb.Matrix(grb.INT64, 9, 9)
        grb.kronecker(C, None, None, binary.PAIR[grb.INT64], A, B)
        assert C.nvals() == A.nvals() * B.nvals()

    def test_kron_shape_check(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.kronecker(
                grb.Matrix(grb.INT64, 3, 4), None, None,
                binary.TIMES[grb.INT64], A, A,
            )

    def test_kron_transpose_descriptor(self, rng):
        A = random_matrix(rng, 2, 3, 0.7)
        B = random_matrix(rng, 2, 2, 0.7)
        C = grb.Matrix(grb.INT64, 6, 4)
        grb.kronecker(C, None, None, binary.TIMES[grb.INT64], A, B, grb.DESC_T0)
        assert (C.to_dense(0) == np.kron(A.to_dense(0).T, B.to_dense(0))).all()
