"""``apply``, ``reduce``, and ``transpose`` (Table II rows 6-9)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, unary

from tests.conftest import random_matrix, random_vector


class TestApply:
    def test_unary_apply_matrix(self):
        A = grb.Matrix.from_coo(grb.INT32, 2, 2, [0, 1], [1, 0], [-3, 4])
        C = grb.Matrix(grb.INT32, 2, 2)
        grb.apply(C, None, None, unary.ABS[grb.INT32], A)
        assert {(i, j): int(v) for i, j, v in C} == {(0, 1): 3, (1, 0): 4}

    def test_fig3_line41_identity_bool_cast(self):
        # sigmas[d] = (Boolean) frontier: INT32 values cast to BOOL by the
        # implicit input cast, then IDENTITY_BOOL
        frontier = grb.Matrix.from_coo(grb.INT32, 3, 2, [0, 1], [0, 1], [2, 0])
        sigma = grb.Matrix(grb.BOOL, 3, 2)
        grb.apply(sigma, None, None, unary.IDENTITY[grb.BOOL], frontier)
        assert {(i, j): bool(v) for i, j, v in sigma} == {
            (0, 0): True,
            (1, 1): False,  # stored 0 stays stored (as false)
        }

    def test_fig3_line57_minv(self):
        numsp = grb.Matrix.from_coo(grb.INT32, 2, 2, [0, 1], [0, 1], [2, 4])
        nspinv = grb.Matrix(grb.FP32, 2, 2)
        grb.apply(nspinv, None, None, unary.MINV[grb.FP32], numsp)
        assert nspinv.extract_element(0, 0) == np.float32(0.5)
        assert nspinv.extract_element(1, 1) == np.float32(0.25)

    def test_apply_vector(self, rng):
        u = random_vector(rng, 8, 0.5)
        w = grb.Vector(grb.INT64, 8)
        grb.apply(w, None, None, unary.AINV[grb.INT64], u)
        idx_u, val_u = u.extract_tuples()
        idx_w, val_w = w.extract_tuples()
        assert idx_u.tolist() == idx_w.tolist()
        assert (val_w == -val_u).all()

    def test_apply_transposed(self, rng):
        A = random_matrix(rng, 3, 5, 0.5)
        C = grb.Matrix(grb.INT64, 5, 3)
        grb.apply(C, None, None, unary.IDENTITY[grb.INT64], A, grb.DESC_T0)
        assert (C.to_dense(0) == A.to_dense(0).T).all()

    def test_apply_shape_mismatch(self):
        A = grb.Matrix(grb.INT64, 2, 3)
        with pytest.raises(grb.DimensionMismatch):
            grb.apply(
                grb.Matrix(grb.INT64, 3, 3), None, None,
                unary.IDENTITY[grb.INT64], A,
            )

    def test_apply_requires_unary(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            grb.apply(A, None, None, binary.PLUS[grb.INT64], A)


class TestApplyBound:
    def test_bind_second(self):
        u = grb.Vector.from_coo(grb.INT64, 3, [0, 1], [10, 20])
        w = grb.Vector(grb.INT64, 3)
        grb.apply_bind_second(w, None, None, binary.PLUS[grb.INT64], u, 5)
        assert w.to_dense(0).tolist() == [15, 25, 0]

    def test_bind_first(self):
        u = grb.Vector.from_coo(grb.FP64, 2, [0, 1], [2.0, 4.0])
        w = grb.Vector(grb.FP64, 2)
        grb.apply_bind_first(w, None, None, binary.DIV[grb.FP64], 1.0, u)
        assert w.to_dense(0).tolist() == [0.5, 0.25]

    def test_bound_ops_differ_for_noncommutative(self):
        u = grb.Vector.from_coo(grb.INT64, 1, [0], [10])
        w1 = grb.Vector(grb.INT64, 1)
        w2 = grb.Vector(grb.INT64, 1)
        grb.apply_bind_first(w1, None, None, binary.MINUS[grb.INT64], 3, u)
        grb.apply_bind_second(w2, None, None, binary.MINUS[grb.INT64], u, 3)
        assert w1.extract_element(0) == -7  # 3 - 10
        assert w2.extract_element(0) == 7   # 10 - 3


class TestApplyIndex:
    def test_rowindex_stamp(self):
        u = grb.Vector.from_coo(grb.INT64, 5, [1, 3], [99, 98])
        w = grb.Vector(grb.INT64, 5)
        grb.apply_index(w, None, None, grb.ops.index_unary.ROWINDEX, u, 0)
        assert {i: int(v) for i, v in w} == {1: 1, 3: 3}

    def test_colindex_matrix(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 3, [0, 1], [2, 1], [7, 7])
        C = grb.Matrix(grb.INT64, 2, 3)
        grb.apply_index(C, None, None, grb.ops.index_unary.COLINDEX, A, 0)
        assert {(i, j): int(v) for i, j, v in C} == {(0, 2): 2, (1, 1): 1}


class TestReduceToVector:
    def test_row_reduce(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2, 3], [0, 0, 0], [4, 0, 5]])
        w = grb.Vector(grb.INT64, 3)
        grb.reduce_to_vector(w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        # row 1 has no stored elements: stays undefined
        assert {i: int(v) for i, v in w} == {0: 6, 2: 9}

    def test_column_reduce_with_tran(self, rng):
        A = random_matrix(rng, 4, 6, 0.5)
        w = grb.Vector(grb.INT64, 6)
        grb.reduce_to_vector(
            w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A, grb.DESC_T0
        )
        assert (w.to_dense(0) == A.to_dense(0).sum(axis=0)).all()

    def test_binaryop_form_fig3_line78(self):
        # GrB_reduce(delta, NULL, PLUS, PLUS, bcu, NULL)
        bcu = grb.Matrix.from_dense(grb.FP32, [[1.0, 2.0], [3.0, 4.0]])
        delta = grb.Vector.from_coo(grb.FP32, 2, [0, 1], [-2.0, -2.0])
        grb.reduce(delta, None, binary.PLUS[grb.FP32], binary.PLUS[grb.FP32], bcu)
        assert delta.to_dense(0).tolist() == [1.0, 5.0]

    def test_min_reduce(self):
        A = grb.Matrix.from_dense(grb.FP64, [[3.0, 1.0], [2.0, 5.0]])
        w = grb.Vector(grb.FP64, 2)
        grb.reduce_to_vector(w, None, None, predefined.MIN_MONOID[grb.FP64], A)
        assert w.to_dense(0).tolist() == [1.0, 2.0]

    def test_non_associative_binaryop_rejected(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        w = grb.Vector(grb.INT64, 2)
        with pytest.raises(grb.InvalidValue):
            grb.reduce_to_vector(w, None, None, binary.MINUS[grb.INT64], A)

    def test_size_mismatch(self):
        A = grb.Matrix(grb.INT64, 3, 4)
        with pytest.raises(grb.DimensionMismatch):
            grb.reduce_to_vector(
                grb.Vector(grb.INT64, 4), None, None,
                grb.monoid("GrB_PLUS_MONOID_INT64"), A,
            )


class TestReduceToScalar:
    def test_sum_all(self, rng):
        A = random_matrix(rng, 6, 6, 0.5)
        total = grb.reduce_to_scalar(grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert total == A.to_dense(0).sum()

    def test_empty_collection_gives_identity(self):
        A = grb.Matrix(grb.FP64, 3, 3)
        assert grb.reduce_to_scalar(predefined.MIN_MONOID[grb.FP64], A) == np.inf

    def test_vector_reduce(self, rng):
        u = random_vector(rng, 9, 0.6)
        assert (
            grb.reduce_to_scalar(grb.monoid("GrB_PLUS_MONOID_INT64"), u)
            == u.to_dense(0).sum()
        )

    def test_scalar_accum(self):
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        got = grb.reduce_to_scalar(
            grb.monoid("GrB_PLUS_MONOID_INT64"), A,
            accum=binary.PLUS[grb.INT64], init=100,
        )
        assert got == 110

    def test_requires_monoid(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            grb.reduce_to_scalar(binary.PLUS[grb.INT64], A)


class TestTranspose:
    def test_basic(self, rng):
        A = random_matrix(rng, 4, 7, 0.4)
        C = grb.Matrix(grb.INT64, 7, 4)
        grb.transpose(C, None, None, A)
        assert (C.to_dense(0) == A.to_dense(0).T).all()

    def test_double_transpose_via_descriptor(self, rng):
        # INP0=TRAN then transpose = copy
        A = random_matrix(rng, 4, 7, 0.4)
        C = grb.Matrix(grb.INT64, 4, 7)
        grb.transpose(C, None, None, A, grb.DESC_T0)
        assert (C.to_dense(0) == A.to_dense(0)).all()

    def test_involution(self, rng):
        A = random_matrix(rng, 5, 5, 0.4)
        B = grb.Matrix(grb.INT64, 5, 5)
        C = grb.Matrix(grb.INT64, 5, 5)
        grb.transpose(B, None, None, A)
        grb.transpose(C, None, None, B)
        assert (C.to_dense(0) == A.to_dense(0)).all()

    def test_accum(self):
        A = grb.Matrix.from_dense(grb.INT64, [[0, 1], [2, 0]])
        C = grb.Matrix.from_dense(grb.INT64, [[0, 10], [0, 0]])
        grb.transpose(C, None, binary.PLUS[grb.INT64], A)
        assert C.to_dense(0).tolist() == [[0, 12], [1, 0]]

    def test_shape_check(self):
        A = grb.Matrix(grb.INT64, 3, 4)
        with pytest.raises(grb.DimensionMismatch):
            grb.transpose(grb.Matrix(grb.INT64, 3, 4), None, None, A)
