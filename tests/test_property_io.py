"""Property-based round-trip tests for every I/O path."""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro.io import (
    deserialize,
    mmread,
    mmwrite,
    read_edgelist,
    serialize,
    write_edgelist,
)
from repro.utils import matrices_equal, vectors_equal

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def any_matrix(draw, domains=(grb.INT64, grb.FP64, grb.BOOL, grb.INT8)):
    domain = draw(st.sampled_from(domains))
    nrows = draw(st.integers(1, 9))
    ncols = draw(st.integers(1, 9))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(0, nrows - 1),
                st.integers(0, ncols - 1),
                st.integers(-100, 100),
            ),
            max_size=nrows * ncols,
        )
    )
    content = {}
    for i, j, v in cells:
        if domain.is_bool:
            content[(i, j)] = bool(v % 2)
        elif domain is grb.INT8:
            content[(i, j)] = np.int8(v)
        elif domain.is_float:
            content[(i, j)] = float(v) / 4
        else:
            content[(i, j)] = np.int64(v)
    M = grb.Matrix(domain, nrows, ncols)
    if content:
        rows, cols, vals = zip(*[(i, j, x) for (i, j), x in content.items()])
        M.build(rows, cols, list(vals))
    return M


class TestSerializeRoundTrip:
    @given(A=any_matrix())
    @settings(**SETTINGS)
    def test_matrix(self, A):
        B = deserialize(serialize(A))
        assert matrices_equal(A, B)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_vector(self, data):
        size = data.draw(st.integers(1, 12))
        cells = data.draw(
            st.lists(
                st.tuples(st.integers(0, size - 1), st.integers(-9, 9)),
                max_size=size,
            )
        )
        content = {i: np.int64(v) for i, v in cells}
        u = grb.Vector(grb.INT64, size)
        if content:
            idx, vals = zip(*content.items())
            u.build(idx, vals)
        v = deserialize(serialize(u))
        assert vectors_equal(u, v)


class TestMatrixMarketRoundTrip:
    @given(A=any_matrix(domains=(grb.FP64, grb.INT64)))
    @settings(**SETTINGS)
    def test_values_survive(self, A):
        buf = io.StringIO()
        mmwrite(buf, A)
        buf.seek(0)
        B = mmread(buf, domain=A.type)
        assert matrices_equal(A, B)

    @given(A=any_matrix(domains=(grb.BOOL,)))
    @settings(**SETTINGS)
    def test_pattern_survives(self, A):
        buf = io.StringIO()
        mmwrite(buf, A)
        buf.seek(0)
        B = mmread(buf)
        assert {(i, j) for i, j, _ in A} == {(i, j) for i, j, _ in B}


class TestEdgelistRoundTrip:
    @given(A=any_matrix(domains=(grb.FP64,)))
    @settings(**SETTINGS)
    def test_weighted_square(self, A):
        if A.nrows != A.ncols:
            A.resize(max(A.nrows, A.ncols), max(A.nrows, A.ncols))
        buf = io.StringIO()
        write_edgelist(buf, A)
        B = read_edgelist(io.StringIO(buf.getvalue()), n=A.nrows)
        assert {(i, j): float(v) for i, j, v in A} == {
            (i, j): float(v) for i, j, v in B
        }


class TestImportExportRoundTrip:
    @given(A=any_matrix(domains=(grb.INT64,)))
    @settings(**SETTINGS)
    def test_csr(self, A):
        indptr, cols, vals = A.export_csr()
        B = grb.Matrix.import_csr(grb.INT64, A.nrows, A.ncols, indptr, cols, vals)
        assert matrices_equal(A, B)
        from repro.validation import check

        check(B)
