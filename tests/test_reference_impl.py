"""Direct unit tests of the spec-literal reference implementation.

The cross-backend property suites treat the reference as the oracle, so
the oracle itself needs independent anchoring: these tests pin it to
hand-computed results straight from the paper's definitions.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, index_unary, unary
from repro.reference import (
    RefMatrix,
    RefVector,
    ref_apply,
    ref_assign_matrix,
    ref_assign_scalar_matrix,
    ref_ewise_add,
    ref_ewise_mult,
    ref_extract_matrix,
    ref_mxm,
    ref_mxv,
    ref_reduce_rows,
    ref_reduce_scalar,
    ref_select,
    ref_transpose,
    ref_vxm,
)

S = predefined.PLUS_TIMES[grb.INT64]


def m(content, nrows=3, ncols=3, domain=grb.INT64):
    return RefMatrix(domain, nrows, ncols, content)


class TestRefMxm:
    def test_set_intersection_formula(self):
        # C(i,j) = ⊕ over ind(A(i,:)) ∩ ind(B(:,j)) — section II, literally
        A = m({(0, 0): 2, (0, 1): 3})
        B = m({(0, 0): 10, (2, 0): 99})  # k=1 missing: no contribution
        C = m({})
        ref_mxm(C, None, None, S, A, B)
        assert C.content == {(0, 0): 20}

    def test_no_intersection_no_element(self):
        A = m({(0, 0): 2})
        B = m({(1, 1): 3})
        C = m({})
        ref_mxm(C, None, None, S, A, B)
        assert C.content == {}

    def test_transposes(self):
        A = m({(0, 1): 5})
        C = m({})
        ref_mxm(C, None, None, S, A, A, tran0=True)  # Aᵀ A
        assert C.content == {(1, 1): 25}

    def test_mask_and_replace(self):
        A = m({(0, 0): 1, (1, 1): 1})
        C = m({(2, 2): 9})
        mask = m({(0, 0): True}, domain=grb.BOOL)
        ref_mxm(C, mask, None, S, A, A, replace=True)
        assert C.content == {(0, 0): 1}  # (2,2) deleted by replace

    def test_mask_merge_keeps_outside(self):
        A = m({(0, 0): 1, (1, 1): 1})
        C = m({(2, 2): 9})
        mask = m({(0, 0): True}, domain=grb.BOOL)
        ref_mxm(C, mask, None, S, A, A, replace=False)
        assert C.content == {(0, 0): 1, (2, 2): 9}

    def test_accumulator(self):
        A = m({(0, 0): 2})
        C = m({(0, 0): 10, (1, 1): 7})
        ref_mxm(C, None, binary.PLUS[grb.INT64], S, A, A)
        assert C.content == {(0, 0): 14, (1, 1): 7}


class TestRefVectorOps:
    def test_mxv(self):
        A = m({(0, 1): 3, (2, 0): 4})
        u = RefVector(grb.INT64, 3, {1: 5})
        w = RefVector(grb.INT64, 3)
        ref_mxv(w, None, None, S, A, u)
        assert w.content == {0: 15}

    def test_vxm_multiply_order(self):
        A = m({(0, 1): 3})
        u = RefVector(grb.INT64, 3, {0: 10})
        w = RefVector(grb.INT64, 3)
        s_first = grb.semiring_new(
            grb.monoid("GrB_PLUS_MONOID_INT64"), binary.FIRST[grb.INT64]
        )
        ref_vxm(w, None, None, s_first, u, A)
        assert w.content == {1: 10}  # FIRST(u, a) = u


class TestRefEWise:
    def test_add_union(self):
        A = m({(0, 0): 1, (0, 1): 2})
        B = m({(0, 1): 10, (1, 1): 20})
        C = m({})
        ref_ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B)
        assert C.content == {(0, 0): 1, (0, 1): 12, (1, 1): 20}

    def test_mult_intersection(self):
        A = m({(0, 0): 1, (0, 1): 2})
        B = m({(0, 1): 10, (1, 1): 20})
        C = m({})
        ref_ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, B)
        assert C.content == {(0, 1): 20}

    def test_structural_mask(self):
        A = m({(0, 0): 1, (1, 1): 2})
        mask = m({(0, 0): False}, domain=grb.BOOL)  # stored-but-false
        C = m({})
        ref_ewise_add(
            C, mask, None, binary.PLUS[grb.INT64], A, A, mask_struct=True
        )
        assert C.content == {(0, 0): 2}  # STRUCTURE: presence counts

    def test_complemented_mask(self):
        A = m({(0, 0): 1, (1, 1): 2})
        mask = m({(0, 0): True}, domain=grb.BOOL)
        C = m({})
        ref_ewise_add(
            C, mask, None, binary.PLUS[grb.INT64], A, A, mask_comp=True
        )
        assert C.content == {(1, 1): 4}


class TestRefUnaryAndReduce:
    def test_apply_with_cast(self):
        A = m({(0, 0): 4}, domain=grb.INT32)
        C = m({}, domain=grb.FP32)
        ref_apply(C, None, None, unary.MINV[grb.FP32], A)
        assert C.content[(0, 0)] == np.float32(0.25)

    def test_select(self):
        A = m({(0, 1): 1, (1, 0): 2, (2, 2): 3})
        C = m({})
        ref_select(C, None, None, index_unary.TRIL, A, 0)
        assert C.content == {(1, 0): 2, (2, 2): 3}

    def test_reduce_rows_skips_empty(self):
        A = m({(0, 0): 1, (0, 2): 2, (2, 1): 5})
        w = RefVector(grb.INT64, 3)
        ref_reduce_rows(w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        assert w.content == {0: 3, 2: 5}  # row 1 has no element

    def test_reduce_scalar_identity_on_empty(self):
        A = m({})
        assert (
            ref_reduce_scalar(predefined.MIN_MONOID[grb.FP64], A) == np.inf
        )

    def test_transpose(self):
        A = m({(0, 2): 7})
        C = m({})
        ref_transpose(C, None, None, A)
        assert C.content == {(2, 0): 7}


class TestRefExtractAssign:
    def test_extract_renumbers(self):
        A = m({(1, 1): 5, (2, 2): 6})
        C = RefMatrix(grb.INT64, 2, 2)
        ref_extract_matrix(C, None, None, A, [1, 2], [1, 2])
        assert C.content == {(0, 0): 5, (1, 1): 6}

    def test_assign_deletes_uncovered_region(self):
        C = m({(0, 0): 1, (0, 1): 2, (1, 0): 3})
        src = RefMatrix(grb.INT64, 1, 2, {(0, 0): 9})
        ref_assign_matrix(C, None, None, src, [0], [0, 1])
        # region row 0 x cols {0,1}: (0,0)=9, (0,1) deleted, (1,0) kept
        assert C.content == {(0, 0): 9, (1, 0): 3}

    def test_assign_scalar_fills_region(self):
        C = m({})
        ref_assign_scalar_matrix(C, None, None, 7, [0, 1], [0])
        assert C.content == {(0, 0): 7, (1, 0): 7}

    def test_equality_helper(self):
        a = m({(0, 0): 1})
        b = m({(0, 0): 1})
        c = m({(0, 0): 2})
        assert a == b and not (a == c)
        assert not (a == m({(0, 0): 1}, nrows=4))
