"""Property-based algebraic invariants: monoid laws, mask identities,
operation equivalences the paper's math guarantees."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro.algebra import predefined
from repro.ops import binary

SETTINGS = dict(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

MONOIDS = [
    predefined.PLUS_MONOID[grb.INT64],
    predefined.TIMES_MONOID[grb.INT64],
    predefined.MIN_MONOID[grb.INT64],
    predefined.MAX_MONOID[grb.INT64],
    predefined.LOR_MONOID[grb.BOOL],
    predefined.LAND_MONOID[grb.BOOL],
    predefined.LXOR_MONOID[grb.BOOL],
    predefined.BOR_MONOID[grb.UINT8],
    predefined.BAND_MONOID[grb.UINT8],
]


def _val(monoid, data):
    if monoid.domain.is_bool:
        return np.bool_(data.draw(st.booleans()))
    if monoid.domain.is_unsigned:
        return monoid.domain.np_dtype.type(data.draw(st.integers(0, 255)))
    return monoid.domain.np_dtype.type(data.draw(st.integers(-50, 50)))


class TestMonoidLaws:
    @pytest.mark.parametrize("m", MONOIDS, ids=lambda m: m.name)
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_identity_law(self, m, data):
        x = _val(m, data)
        assert m(m.identity, x) == x
        assert m(x, m.identity) == x

    @pytest.mark.parametrize("m", MONOIDS, ids=lambda m: m.name)
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_associativity(self, m, data):
        x, y, z = (_val(m, data) for _ in range(3))
        assert m(m(x, y), z) == m(x, m(y, z))

    @pytest.mark.parametrize("m", MONOIDS, ids=lambda m: m.name)
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_commutativity_of_commutative_monoids(self, m, data):
        x, y = _val(m, data), _val(m, data)
        assert m(x, y) == m(y, x)


class TestSemiringLaws:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_annihilator_int(self, data):
        # the implied zero annihilates ⊗ for the Table I semirings
        s = predefined.PLUS_TIMES[grb.INT64]
        x = np.int64(data.draw(st.integers(-100, 100)))
        assert s.mul(s.zero, x) == s.zero
        assert s.mul(x, s.zero) == s.zero

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_annihilator_min_plus(self, data):
        s = predefined.MIN_PLUS[grb.FP64]
        x = float(data.draw(st.integers(-100, 100)))
        assert s.mul(s.zero, x) == s.zero  # inf + x == inf

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_distributivity_plus_times(self, data):
        s = predefined.PLUS_TIMES[grb.INT64]
        a, b, c = (np.int64(data.draw(st.integers(-40, 40))) for _ in range(3))
        assert s.mul(a, s.add(b, c)) == s.add(s.mul(a, b), s.mul(a, c))

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_distributivity_min_plus(self, data):
        s = predefined.MIN_PLUS[grb.INT64]
        a, b, c = (np.int64(data.draw(st.integers(-40, 40))) for _ in range(3))
        assert s.mul(a, s.add(b, c)) == s.add(s.mul(a, b), s.mul(a, c))

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_gf2_field_laws(self, data):
        s = predefined.LXOR_LAND[grb.BOOL]
        a, b, c = (np.bool_(data.draw(st.booleans())) for _ in range(3))
        assert s.mul(a, s.add(b, c)) == s.add(s.mul(a, b), s.mul(a, c))
        assert s.add(a, a) == False  # noqa: E712  xor self-inverse


@st.composite
def small_matrix(draw, n=6, domain=grb.INT64):
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                      st.integers(-3, 3)),
            max_size=n * n,
        )
    )
    content = {(i, j): v for i, j, v in cells}
    M = grb.Matrix(domain, n, n)
    if content:
        rows, cols, vals = zip(*[(i, j, v) for (i, j), v in content.items()])
        M.build(rows, cols, vals)
    return M


class TestOperationIdentities:
    @given(A=small_matrix())
    @settings(**SETTINGS)
    def test_transpose_involution(self, A):
        B = grb.Matrix(grb.INT64, 6, 6)
        C = grb.Matrix(grb.INT64, 6, 6)
        grb.transpose(B, None, None, A)
        grb.transpose(C, None, None, B)
        assert (C.to_dense(0) == A.to_dense(0)).all()
        assert {(i, j) for i, j, _ in C} == {(i, j) for i, j, _ in A}

    @given(A=small_matrix(), B=small_matrix())
    @settings(**SETTINGS)
    def test_mxm_transpose_identity(self, A, B):
        # (A B)ᵀ == Bᵀ Aᵀ over plus_times
        s = predefined.PLUS_TIMES[grb.INT64]
        AB = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(AB, None, None, s, A, B)
        ABt = grb.Matrix(grb.INT64, 6, 6)
        grb.transpose(ABt, None, None, AB)
        BtAt = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(BtAt, None, None, s, B, A, grb.DESC_T0T1)
        assert (ABt.to_dense(0) == BtAt.to_dense(0)).all()
        assert {(i, j) for i, j, _ in ABt} == {(i, j) for i, j, _ in BtAt}

    @given(A=small_matrix(), B=small_matrix(), C=small_matrix())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_mxm_associativity_values(self, A, B, C):
        # (AB)C == A(BC) as values over plus_times (patterns may differ
        # only through computed zeros, so compare dense)
        s = predefined.PLUS_TIMES[grb.INT64]
        AB = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(AB, None, None, s, A, B)
        ABC1 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(ABC1, None, None, s, AB, C)
        BC = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(BC, None, None, s, B, C)
        ABC2 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(ABC2, None, None, s, A, BC)
        assert (ABC1.to_dense(0) == ABC2.to_dense(0)).all()

    @given(A=small_matrix(), M=small_matrix(domain=grb.BOOL))
    @settings(**SETTINGS)
    def test_scmp_involution(self, A, M):
        # writing with mask and with double-SCMP-partition reconstructs:
        # T∩M and T∩¬M partition T
        s = predefined.PLUS_TIMES[grb.INT64]
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        C3 = grb.Matrix(grb.INT64, 6, 6)
        grb.mxm(C1, M, None, s, A, A, grb.DESC_R)
        grb.mxm(C2, M, None, s, A, A, grb.DESC_RSC)
        grb.mxm(C3, None, None, s, A, A)
        p1 = {(i, j) for i, j, _ in C1}
        p2 = {(i, j) for i, j, _ in C2}
        p3 = {(i, j) for i, j, _ in C3}
        assert p1 | p2 == p3
        assert not (p1 & p2)

    @given(A=small_matrix(), B=small_matrix())
    @settings(**SETTINGS)
    def test_ewise_add_commutes(self, A, B):
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        grb.ewise_add(C1, None, None, binary.PLUS[grb.INT64], A, B)
        grb.ewise_add(C2, None, None, binary.PLUS[grb.INT64], B, A)
        assert {(i, j): int(v) for i, j, v in C1} == {
            (i, j): int(v) for i, j, v in C2
        }

    @given(A=small_matrix())
    @settings(**SETTINGS)
    def test_ewise_mult_with_self_is_square(self, A):
        C = grb.Matrix(grb.INT64, 6, 6)
        grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, A)
        a = A.to_dense(0)
        assert (C.to_dense(0) == a * a).all()
        assert {(i, j) for i, j, _ in C} == {(i, j) for i, j, _ in A}

    @given(A=small_matrix())
    @settings(**SETTINGS)
    def test_extract_all_is_copy(self, A):
        C = grb.Matrix(grb.INT64, 6, 6)
        grb.matrix_extract(C, None, None, A, grb.ALL, grb.ALL)
        assert {(i, j): int(v) for i, j, v in C} == {
            (i, j): int(v) for i, j, v in A
        }

    @given(A=small_matrix())
    @settings(**SETTINGS)
    def test_reduce_rows_equals_mxv_ones(self, A):
        # row-reduce == A +.* dense-ones (over plus_times)
        ones = grb.Vector(grb.INT64, 6)
        grb.vector_assign_scalar(ones, None, None, 1, grb.ALL)
        w1 = grb.Vector(grb.INT64, 6)
        w2 = grb.Vector(grb.INT64, 6)
        grb.reduce_to_vector(w1, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), A)
        grb.mxv(w2, None, None, predefined.PLUS_TIMES[grb.INT64], A, ones)
        assert {i: int(v) for i, v in w1} == {i: int(v) for i, v in w2}
