"""Per-thread sequences (paper section IV): "A multithreaded program may
have a distinct sequence per thread, but those sequences must not share
objects unless the shared objects are read-only"."""

import threading

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.ops import binary


class TestPerThreadSequences:
    def test_threads_have_independent_queues(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        results = {}

        def worker(name):
            C = grb.Matrix(grb.INT64, 2, 2)
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
            # this thread's queue holds exactly its own op
            results[name + "_queued"] = grb.queue_stats()["enqueued"]
            grb.wait()
            results[name] = C.to_dense(0)

        t = threading.Thread(target=worker, args=("t1",))
        t.start()
        t.join()
        # main thread's sequence is untouched by the worker's ops
        assert grb.queue_stats()["enqueued"] == 0
        assert results["t1_queued"] == 1
        assert (results["t1"] == A.to_dense(0) @ A.to_dense(0)).all()

    def test_concurrent_sequences_share_readonly_input(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = erdos_renyi(200, 3000, seed=77, domain=grb.INT64)
        expect = A.to_dense(0) @ A.to_dense(0)
        outputs = [None] * 4
        errors = []

        def worker(k):
            try:
                C = grb.Matrix(grb.INT64, 200, 200)
                grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
                grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], C, C)
                outputs[k] = C.to_dense(0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for out in outputs:
            assert (out == 2 * expect).all()

    def test_error_in_one_thread_does_not_poison_another(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise grb.info.OutOfMemory("thread-local failure")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        seen = {}

        def failing():
            C = grb.Matrix(grb.INT64, 1, 1)
            grb.ewise_mult(C, None, None, bad, A, A)
            try:
                grb.wait()
                seen["failing"] = "no error"
            except grb.info.OutOfMemory:
                seen["failing"] = "raised"

        t = threading.Thread(target=failing)
        t.start()
        t.join()
        assert seen["failing"] == "raised"
        # the main thread's sequence is clean: wait() raises nothing
        grb.wait()
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, A)
        assert C.nvals() == 1

    def test_blocking_mode_thread_safety_of_kernels(self):
        # blocking mode: concurrent independent operations on shared
        # read-only inputs must not interfere
        A = erdos_renyi(150, 2000, seed=78, domain=grb.INT64)
        expect = A.to_dense(0).T
        outs = [None] * 3

        def worker(k):
            C = grb.Matrix(grb.INT64, 150, 150)
            grb.transpose(C, None, None, A)
            outs[k] = C.to_dense(0)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for out in outs:
            assert (out == expect).all()


class TestContextHandoff:
    """The thread-local activation stack and the explicit cross-thread
    handoff API: Context objects are the handoff tokens."""

    def test_activation_stack_is_thread_local(self):
        from repro import context

        ctx = context.Context(context.Mode.NONBLOCKING, name="mine")
        seen = {}

        def worker():
            # another thread's activation must not be visible here
            seen["mode"] = context.current_mode()
            seen["ctx"] = context.current_context()

        with context.activate(ctx):
            assert context.current_context() is ctx
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["mode"] is grb.Mode.BLOCKING
        assert seen["ctx"] is not ctx

    def test_explicit_handoff_moves_sequence_between_threads(self):
        # two threads interleave on ONE context: thread A enqueues deferred
        # work, detaches it with context.handoff(); thread B adopts the
        # token and continues the sequence.  Without the explicit step the
        # per-thread sequence discipline keeps A's queue invisible to B.
        from repro import context

        ctx = context.Context(context.Mode.NONBLOCKING, name="handoff")
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        baton = threading.Event()
        done = threading.Event()
        out = {}

        def thread_a():
            with context.activate(ctx):
                C = grb.Matrix(grb.INT64, 2, 2)
                grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
                out["C"] = C
                out["queued_a"] = grb.queue_stats()["enqueued"]
                out["token"] = context.handoff()
                # post-handoff this thread's sequence is fresh and empty
                out["after_handoff"] = len(context.current_context().queue)
            baton.set()
            done.wait(timeout=30)

        def thread_b():
            baton.wait(timeout=30)
            with context.activate(ctx):
                context.adopt(out["token"])
                # B now owns the sequence; completion forces A's op
                out["result"] = out["C"].to_dense(0)
                grb.wait()
            done.set()

        ta = threading.Thread(target=thread_a)
        tb = threading.Thread(target=thread_b)
        ta.start(); tb.start()
        ta.join(timeout=60); tb.join(timeout=60)
        assert not ta.is_alive() and not tb.is_alive()
        assert out["queued_a"] == 1
        assert out["after_handoff"] == 0
        want = A.to_dense(0) @ A.to_dense(0)
        assert (out["result"] == want).all()

    def test_two_thread_interleaving_isolated_contexts(self):
        # two threads ping-pong operations on two different contexts; each
        # sequence keeps its own mode, queue, and results
        from repro import context

        c1 = context.Context(context.Mode.NONBLOCKING, name="s1")
        c2 = context.Context(context.Mode.NONBLOCKING, name="s2")
        A = grb.Matrix.from_dense(grb.INT64, [[2, 0], [0, 2]])
        steps: "list[str]" = []
        lock = threading.Lock()
        turn = threading.Semaphore(1), threading.Semaphore(0)
        out = {}

        def worker(idx, ctx):
            me, other = turn[idx], turn[1 - idx]
            for round_no in range(3):
                me.acquire()
                with context.activate(ctx):
                    C = grb.Matrix(grb.INT64, 2, 2)
                    grb.mxm(
                        C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A
                    )
                    with lock:
                        steps.append(f"t{idx}r{round_no}")
                    grb.wait()
                    out[(idx, round_no)] = C.to_dense(0)
                other.release()

        ts = [threading.Thread(target=worker, args=(i, c))
              for i, c in enumerate((c1, c2))]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in ts)
        # strict alternation proves the interleaving actually happened
        assert steps == ["t0r0", "t1r0", "t0r1", "t1r1", "t0r2", "t1r2"]
        want = A.to_dense(0) @ A.to_dense(0)
        for v in out.values():
            assert (v == want).all()

    def test_handoff_carries_pending_error(self):
        # a failed-but-unraised sequence error travels with the token and
        # surfaces at the adopting thread's wait() (section V semantics)
        from repro import context

        def boom(x, y):
            raise grb.info.OutOfMemory("made on thread A")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        ctx = context.Context(context.Mode.NONBLOCKING, name="err-handoff")
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        out = {}

        def thread_a():
            with context.activate(ctx):
                C = grb.Matrix(grb.INT64, 1, 1)
                grb.ewise_mult(C, None, None, bad, A, A)
                out["token"] = context.handoff()

        def thread_b():
            with context.activate(ctx):
                context.adopt(out["token"])
                try:
                    grb.wait()
                    out["b"] = "no error"
                except grb.info.OutOfMemory:
                    out["b"] = "raised"

        ta = threading.Thread(target=thread_a)
        ta.start(); ta.join(timeout=60)
        tb = threading.Thread(target=thread_b)
        tb.start(); tb.join(timeout=60)
        assert out["b"] == "raised"

    def test_init_rejected_under_session_activation(self):
        from repro import context

        with context.activate(context.Context(context.Mode.NONBLOCKING)):
            with pytest.raises(grb.InvalidValue):
                grb.init()
