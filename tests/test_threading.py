"""Per-thread sequences (paper section IV): "A multithreaded program may
have a distinct sequence per thread, but those sequences must not share
objects unless the shared objects are read-only"."""

import threading

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.ops import binary


class TestPerThreadSequences:
    def test_threads_have_independent_queues(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 1], [1, 1]])
        results = {}

        def worker(name):
            C = grb.Matrix(grb.INT64, 2, 2)
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
            # this thread's queue holds exactly its own op
            results[name + "_queued"] = grb.queue_stats()["enqueued"]
            grb.wait()
            results[name] = C.to_dense(0)

        t = threading.Thread(target=worker, args=("t1",))
        t.start()
        t.join()
        # main thread's sequence is untouched by the worker's ops
        assert grb.queue_stats()["enqueued"] == 0
        assert results["t1_queued"] == 1
        assert (results["t1"] == A.to_dense(0) @ A.to_dense(0)).all()

    def test_concurrent_sequences_share_readonly_input(self):
        grb.init(grb.Mode.NONBLOCKING)
        A = erdos_renyi(200, 3000, seed=77, domain=grb.INT64)
        expect = A.to_dense(0) @ A.to_dense(0)
        outputs = [None] * 4
        errors = []

        def worker(k):
            try:
                C = grb.Matrix(grb.INT64, 200, 200)
                grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
                grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], C, C)
                outputs[k] = C.to_dense(0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for out in outputs:
            assert (out == 2 * expect).all()

    def test_error_in_one_thread_does_not_poison_another(self):
        grb.init(grb.Mode.NONBLOCKING)

        def boom(x, y):
            raise grb.info.OutOfMemory("thread-local failure")

        bad = grb.binary_op_new(boom, grb.INT64, grb.INT64, grb.INT64)
        A = grb.Matrix.from_dense(grb.INT64, [[1]])
        seen = {}

        def failing():
            C = grb.Matrix(grb.INT64, 1, 1)
            grb.ewise_mult(C, None, None, bad, A, A)
            try:
                grb.wait()
                seen["failing"] = "no error"
            except grb.info.OutOfMemory:
                seen["failing"] = "raised"

        t = threading.Thread(target=failing)
        t.start()
        t.join()
        assert seen["failing"] == "raised"
        # the main thread's sequence is clean: wait() raises nothing
        grb.wait()
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, A)
        assert C.nvals() == 1

    def test_blocking_mode_thread_safety_of_kernels(self):
        # blocking mode: concurrent independent operations on shared
        # read-only inputs must not interfere
        A = erdos_renyi(150, 2000, seed=78, domain=grb.INT64)
        expect = A.to_dense(0).T
        outs = [None] * 3

        def worker(k):
            C = grb.Matrix(grb.INT64, 150, 150)
            grb.transpose(C, None, None, A)
            outs[k] = C.to_dense(0)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for out in outs:
            assert (out == expect).all()
