"""Second cross-backend property wave: masked/accumulated mxv and vxm,
vector assign/extract, eWiseUnion consistency, and FP64 domains (approx
comparison — the reference reduces in the same order, so results are
bit-equal anyway; approx guards future kernel reorderings)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro as grb
from repro.algebra import predefined
from repro.ops import binary
from repro.reference import (
    RefMatrix,
    RefVector,
    ref_assign_scalar_vector,
    ref_assign_vector,
    ref_ewise_add,
    ref_extract_vector,
    ref_mxv,
    ref_vxm,
)

from tests.conftest import assert_matrix_equals_ref, assert_vector_equals_ref

SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def vec_scene(draw, size=8, domain=grb.INT64):
    """(grb, ref) twins for a vector, plus an optional bool mask pair."""

    def mk(dom):
        cells = draw(
            st.lists(
                st.tuples(st.integers(0, size - 1), st.integers(-4, 4)),
                max_size=size,
            )
        )
        if dom.is_bool:
            content = {i: bool(v % 2) for i, v in cells}
        else:
            content = {i: np.int64(v) for i, v in cells}
        v = grb.Vector(dom, size)
        if content:
            idx, vals = zip(*content.items())
            v.build(idx, list(vals))
        return v, RefVector(dom, size, content)

    w = mk(domain)
    use_mask = draw(st.booleans())
    mask = mk(grb.BOOL) if use_mask else (None, None)
    flags = {
        "replace": draw(st.booleans()) if use_mask else False,
        "mask_comp": draw(st.booleans()) if use_mask else False,
        "mask_struct": draw(st.booleans()) if use_mask else False,
    }
    accum = draw(st.sampled_from([None, binary.PLUS[grb.INT64]]))
    return w, mask, flags, accum


@st.composite
def mat_pair(draw, nrows, ncols, domain=grb.INT64):
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(0, nrows - 1),
                st.integers(0, ncols - 1),
                st.integers(-4, 4),
            ),
            max_size=nrows * ncols,
        )
    )
    content = {(i, j): np.int64(v) for i, j, v in cells}
    M = grb.Matrix(domain, nrows, ncols)
    if content:
        rows, cols, vals = zip(*[(i, j, v) for (i, j), v in content.items()])
        M.build(rows, cols, vals)
    return M, RefMatrix(domain, nrows, ncols, content)


def _desc(flags):
    d = grb.Descriptor()
    if flags.get("replace"):
        d.set(grb.OUTP, grb.REPLACE)
    if flags.get("mask_comp"):
        d.set(grb.MASK, grb.SCMP)
    if flags.get("mask_struct"):
        d.set(grb.MASK, grb.STRUCTURE)
    if flags.get("tran0"):
        d.set(grb.INP0, grb.TRAN)
    return d


class TestMaskedVectorOps:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_mxv_full_surface(self, data):
        A, Ar = data.draw(mat_pair(8, 8))
        w, (mg, mr), flags, accum = data.draw(vec_scene())
        (u, ur), _, _, _ = data.draw(vec_scene())
        t0 = data.draw(st.booleans())
        flags = dict(flags, tran0=t0)
        s = predefined.PLUS_TIMES[grb.INT64]
        grb.mxv(w[0], mg, accum, s, A, u, _desc(flags))
        ref_mxv(w[1], mr, accum, s, Ar, ur, **flags)
        assert_vector_equals_ref(w[0], w[1])

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_vxm_full_surface(self, data):
        A, Ar = data.draw(mat_pair(8, 8))
        w, (mg, mr), flags, accum = data.draw(vec_scene())
        (u, ur), _, _, _ = data.draw(vec_scene())
        s = predefined.MIN_PLUS[grb.INT64]
        d = _desc(flags)
        grb.vxm(w[0], mg, accum, s, u, A, d)
        ref_vxm(w[1], mr, accum, s, ur, Ar, **flags)
        assert_vector_equals_ref(w[0], w[1])

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_vector_extract(self, data):
        (u, ur), _, _, _ = data.draw(vec_scene())
        nidx = data.draw(st.integers(1, 8))
        idx = data.draw(
            st.lists(st.integers(0, 7), min_size=nidx, max_size=nidx)
        )
        w = grb.Vector(grb.INT64, nidx)
        wr = RefVector(grb.INT64, nidx)
        grb.vector_extract(w, None, None, u, idx)
        ref_extract_vector(wr, None, None, ur, idx)
        assert_vector_equals_ref(w, wr)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_vector_assign(self, data):
        w, (mg, mr), flags, accum = data.draw(vec_scene())
        nidx = data.draw(st.integers(1, 8))
        idx = data.draw(
            st.lists(
                st.integers(0, 7), min_size=nidx, max_size=nidx, unique=True
            )
        )
        ucells = data.draw(
            st.lists(
                st.tuples(st.integers(0, len(idx) - 1), st.integers(-4, 4)),
                max_size=len(idx),
            )
        )
        ucontent = {i: np.int64(v) for i, v in ucells}
        u = grb.Vector(grb.INT64, len(idx))
        if ucontent:
            ki, kv = zip(*ucontent.items())
            u.build(ki, kv)
        ur = RefVector(grb.INT64, len(idx), ucontent)
        grb.vector_assign(w[0], mg, accum, u, idx, _desc(flags))
        ref_assign_vector(w[1], mr, accum, ur, idx, **flags)
        assert_vector_equals_ref(w[0], w[1])

    @given(data=st.data(), value=st.integers(-5, 5))
    @settings(**SETTINGS)
    def test_vector_assign_scalar(self, data, value):
        w, (mg, mr), flags, accum = data.draw(vec_scene())
        nidx = data.draw(st.integers(1, 8))
        idx = data.draw(
            st.lists(
                st.integers(0, 7), min_size=nidx, max_size=nidx, unique=True
            )
        )
        grb.vector_assign_scalar(w[0], mg, accum, value, idx, _desc(flags))
        ref_assign_scalar_vector(
            w[1], mr, accum, np.int64(value), idx, **flags
        )
        assert_vector_equals_ref(w[0], w[1])


class TestEWiseUnionConsistency:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_union_with_identity_fills_equals_add_for_plus(self, data):
        # fills equal to the monoid identity make eWiseUnion == eWiseAdd
        A, _ = data.draw(mat_pair(6, 6))
        B, _ = data.draw(mat_pair(6, 6))
        C1 = grb.Matrix(grb.INT64, 6, 6)
        C2 = grb.Matrix(grb.INT64, 6, 6)
        grb.ewise_union(C1, None, None, binary.PLUS[grb.INT64], A, 0, B, 0)
        grb.ewise_add(C2, None, None, binary.PLUS[grb.INT64], A, B)
        assert {(i, j): int(v) for i, j, v in C1} == {
            (i, j): int(v) for i, j, v in C2
        }

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_union_pattern_is_union(self, data):
        A, _ = data.draw(mat_pair(6, 6))
        B, _ = data.draw(mat_pair(6, 6))
        C = grb.Matrix(grb.INT64, 6, 6)
        grb.ewise_union(C, None, None, binary.MINUS[grb.INT64], A, 1, B, 1)
        pa = {(i, j) for i, j, _ in A}
        pb = {(i, j) for i, j, _ in B}
        assert {(i, j) for i, j, _ in C} == pa | pb


class TestFloatDomainsCrossBackend:
    @given(data=st.data())
    @settings(**SETTINGS)
    def test_fp64_mxm(self, data):
        n = 6
        cells_a = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                          st.integers(-8, 8)),
                max_size=n * n,
            )
        )
        content_a = {(i, j): np.float64(v) / 2 for i, j, v in cells_a}
        A = grb.Matrix(grb.FP64, n, n)
        if content_a:
            r, c, v = zip(*[(i, j, x) for (i, j), x in content_a.items()])
            A.build(r, c, v)
        Ar = RefMatrix(grb.FP64, n, n, content_a)
        C = grb.Matrix(grb.FP64, n, n)
        Cr = RefMatrix(grb.FP64, n, n)
        s = predefined.PLUS_TIMES[grb.FP64]
        grb.mxm(C, None, None, s, A, A)
        from repro.reference import ref_mxm

        ref_mxm(Cr, None, None, s, Ar, Ar)
        assert_matrix_equals_ref(C, Cr, approx=True)

    @given(data=st.data())
    @settings(**SETTINGS)
    def test_bool_lor_land_mxm(self, data):
        n = 6
        cells = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                          st.booleans()),
                max_size=n * n,
            )
        )
        content = {(i, j): np.bool_(v) for i, j, v in cells}
        A = grb.Matrix(grb.BOOL, n, n)
        if content:
            r, c, v = zip(*[(i, j, x) for (i, j), x in content.items()])
            A.build(r, c, list(v))
        Ar = RefMatrix(grb.BOOL, n, n, content)
        C = grb.Matrix(grb.BOOL, n, n)
        Cr = RefMatrix(grb.BOOL, n, n)
        s = predefined.LOR_LAND[grb.BOOL]
        grb.mxm(C, None, None, s, A, A)
        from repro.reference import ref_mxm

        ref_mxm(Cr, None, None, s, Ar, Ar)
        assert_matrix_equals_ref(C, Cr)
