"""The sequence planner: dead-op hazard rule, fusion, CSE, the DAG
scheduler, the per-pass knobs, and blocking-equivalence guarantees."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

import repro as grb
from repro import context, parallel, planner
from repro.execution import trace
from repro.execution.planner.passes import dead_op_pass
from repro.execution.sequence import DeferredOp, SequenceQueue

from tests.conftest import random_matrix, random_vector


def _op(log, name, reads=(), writes=None, overwrites=False):
    return DeferredOp(
        thunk=lambda: log.append(name),
        reads=reads,
        writes=writes if writes is not None else object(),
        label=name,
        overwrites_output=overwrites,
    )


class TestDeadOpHazardRule:
    """Satellite: an op whose ``writes`` appears in its own ``reads`` is a
    read barrier, never a license to elide earlier writers."""

    def test_self_reading_overwrite_is_a_read_barrier(self):
        q = SequenceQueue()
        log = []
        x = object()
        q.push(_op(log, "produce", writes=x, overwrites=True))
        # accum/merge-style op that *claims* to overwrite but reads its own
        # output: the produce op's value is consumed, so both must run
        q.push(_op(log, "merge", reads=(x,), writes=x, overwrites=True))
        q.drain()
        assert log == ["produce", "merge"]
        assert q.stats.elided == 0

    def test_pass_level_rule(self):
        x = object()
        produce = _op([], "produce", writes=x, overwrites=True)
        merge = _op([], "merge", reads=(x,), writes=x, overwrites=True)
        live, elided = dead_op_pass([produce, merge])
        assert live == [produce, merge] and elided == []

    def test_true_overwrite_still_elides(self):
        x = object()
        produce = _op([], "produce", writes=x, overwrites=True)
        clobber = _op([], "clobber", writes=x, overwrites=True)
        live, elided = dead_op_pass([produce, clobber])
        assert live == [clobber] and elided == [produce]


class TestFusion:
    def _blocking_result(self, build):
        context._reset()
        return build()

    def test_mxm_apply_in_place_fuses(self):
        s = grb.PLUS_TIMES[grb.INT64]

        def build():
            A = random_matrix(np.random.default_rng(7), 8, 8, 0.4)
            C = grb.Matrix(grb.INT64, 8, 8)
            grb.mxm(C, None, None, s, A, A)
            grb.apply(C, None, None, grb.AINV[grb.INT64], C)
            return C

        rows, cols, vals = self._blocking_result(build).extract_tuples()

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        with trace() as t:
            C = build()
            grb.wait()
        assert t.fused == 1
        assert t.count("mxm+apply[fused]") == 1
        assert t.count("mxm") == 0 and t.count("apply") == 0
        r2, c2, v2 = C.extract_tuples()
        assert np.array_equal(rows, r2) and np.array_equal(cols, c2)
        assert np.array_equal(vals, v2) and vals.dtype == v2.dtype

    def test_ewise_mult_reduce_fuses_when_temp_dies(self):
        def build():
            rng = np.random.default_rng(11)
            A = random_matrix(rng, 8, 8, 0.5)
            B = random_matrix(rng, 8, 8, 0.5)
            T = grb.Matrix(grb.INT64, 8, 8)
            delta = grb.Vector(grb.INT64, 8)
            grb.ewise_mult(T, None, None, grb.TIMES[grb.INT64], A, B)
            grb.reduce(delta, None, None, grb.PLUS[grb.INT64], T)
            # T is overwritten before any further read: its eWiseMult value
            # is dead, so the pair above may skip materializing it
            grb.ewise_add(T, None, None, grb.PLUS[grb.INT64], A, B)
            return T, delta

        T_b, delta_b = self._blocking_result(build)
        snap_b = (T_b.extract_tuples(), delta_b.extract_tuples())

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        with trace() as t:
            T, delta = build()
            grb.wait()
        assert t.fused == 1
        assert t.count("eWiseMult+reduce[fused]") == 1
        assert t.count("eWiseAdd") == 1
        for got, want in zip((T.extract_tuples(), delta.extract_tuples()), snap_b):
            for g, w in zip(got, want):
                assert np.array_equal(g, w) and g.dtype == w.dtype

    def test_no_fusion_when_intermediate_survives(self, rng):
        # delta reads T, but T's value is still live at the end of the
        # sequence — skipping its store would be observable
        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 8, 8, 0.5)
        T = grb.Matrix(grb.INT64, 8, 8)
        delta = grb.Vector(grb.INT64, 8)
        with trace() as t:
            grb.mxm(T, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.reduce(delta, None, None, grb.PLUS[grb.INT64], T)
            grb.wait()
        assert t.fused == 0
        assert t.count("mxm") == 1 and t.count("reduce") == 1

    def test_no_fusion_with_second_reader(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 8, 8, 0.5)
        T = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix(grb.INT64, 8, 8)
        with trace() as t:
            grb.mxm(T, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.apply(T, None, None, grb.AINV[grb.INT64], T)
            grb.apply(C2, None, None, grb.ABS[grb.INT64], T)
            grb.wait()
        # first apply rewrites T in place, but T is then read again — the
        # in-place pair is still fusable (case a: readers see apply's result)
        assert t.fused == 1

    def test_fusion_knob_disables(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        planner.configure(fusion=False)
        A = random_matrix(rng, 8, 8, 0.4)
        C = grb.Matrix(grb.INT64, 8, 8)
        with trace() as t:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.apply(C, None, None, grb.AINV[grb.INT64], C)
            grb.wait()
        assert t.fused == 0
        assert t.count("mxm") == 1 and t.count("apply") == 1


class TestCSE:
    def test_identical_products_share_one_kernel(self):
        s = grb.PLUS_TIMES[grb.INT64]

        def build():
            rng = np.random.default_rng(13)
            A = random_matrix(rng, 8, 8, 0.4)
            B = random_matrix(rng, 8, 8, 0.4)
            C1 = grb.Matrix(grb.INT64, 8, 8)
            C2 = grb.Matrix(grb.INT64, 8, 8)
            grb.mxm(C1, None, None, s, A, B)
            grb.mxm(C2, None, None, s, A, B)
            return C1, C2

        context._reset()
        C1_b, C2_b = build()
        want = C1_b.extract_tuples()

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        with trace() as t:
            C1, C2 = build()
            grb.wait()
        assert t.cse_hits == 1
        assert t.count("mxm") == 1 and t.count("mxm[cse]") == 1
        for M in (C1, C2):
            got = M.extract_tuples()
            for g, w in zip(got, want):
                assert np.array_equal(g, w) and g.dtype == w.dtype

    def test_input_write_invalidates(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        s = grb.PLUS_TIMES[grb.INT64]
        A = random_matrix(rng, 8, 8, 0.4)
        B = random_matrix(rng, 8, 8, 0.4)
        C1 = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix(grb.INT64, 8, 8)
        with trace() as t:
            grb.mxm(C1, None, None, s, A, B)
            grb.apply(B, None, None, grb.AINV[grb.INT64], B)  # B changes
            grb.mxm(C2, None, None, s, A, B)
            grb.wait()
        assert t.cse_hits == 0
        assert t.count("mxm") == 2

    def test_different_accum_still_shares_kernel(self, rng):
        # CSE reuses T; each duplicate runs its own write pipeline, so the
        # accumulated copy differs from the plain one
        grb.init(grb.Mode.NONBLOCKING)
        s = grb.PLUS_TIMES[grb.INT64]
        A = random_matrix(rng, 8, 8, 0.4)
        C1 = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix.from_coo(grb.INT64, 8, 8, [0], [0], [100])
        with trace() as t:
            grb.mxm(C1, None, None, s, A, A)
            grb.mxm(C2, None, grb.PLUS[grb.INT64], s, A, A)
            grb.wait()
        assert t.cse_hits == 1
        # blocking oracle
        context._reset()
        A2 = grb.Matrix.from_coo(grb.INT64, 8, 8, *A.extract_tuples())
        D2 = grb.Matrix.from_coo(grb.INT64, 8, 8, [0], [0], [100])
        grb.mxm(D2, None, grb.PLUS[grb.INT64], s, A2, A2)
        for g, w in zip(C2.extract_tuples(), D2.extract_tuples()):
            assert np.array_equal(g, w)

    def test_cse_knob_disables(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        planner.configure(cse=False)
        s = grb.PLUS_TIMES[grb.INT64]
        A = random_matrix(rng, 8, 8, 0.4)
        C1 = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix(grb.INT64, 8, 8)
        with trace() as t:
            grb.mxm(C1, None, None, s, A, A)
            grb.mxm(C2, None, None, s, A, A)
            grb.wait()
        assert t.cse_hits == 0 and t.count("mxm") == 2


class TestScheduler:
    def test_independent_ops_report_width(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        s = grb.PLUS_TIMES[grb.INT64]
        A = random_matrix(rng, 8, 8, 0.4)
        B = random_matrix(rng, 8, 8, 0.4)
        C1 = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix(grb.INT64, 8, 8)
        with trace() as t:
            grb.mxm(C1, None, None, s, A, B)
            grb.mxm(C2, None, None, s, B, A)
            grb.wait()
        assert t.max_schedule_width >= 2

    def test_parallel_dispatch_matches_serial(self):
        s = grb.PLUS_TIMES[grb.INT64]

        def build():
            rng = np.random.default_rng(17)
            A = random_matrix(rng, 10, 10, 0.5)
            B = random_matrix(rng, 10, 10, 0.5)
            outs = [grb.Matrix(grb.INT64, 10, 10) for _ in range(4)]
            grb.mxm(outs[0], None, None, s, A, B)
            grb.mxm(outs[1], None, None, s, B, A)
            grb.ewise_add(outs[2], None, None, grb.PLUS[grb.INT64], A, B)
            grb.ewise_mult(outs[3], None, None, grb.TIMES[grb.INT64], A, B)
            return outs

        context._reset()
        want = [M.extract_tuples() for M in build()]

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        parallel.set_num_threads(2)
        # tiny threshold: prove scheduler workers stay serial inside kernels
        parallel.set_parallel_threshold(1)
        try:
            outs = build()
            grb.wait()
        finally:
            parallel.set_num_threads(1)
            parallel.set_parallel_threshold(200_000)
        for M, w in zip(outs, want):
            for g, ww in zip(M.extract_tuples(), w):
                assert np.array_equal(g, ww) and g.dtype == ww.dtype

    def test_parallel_knob_disables(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        planner.configure(parallel=False)
        parallel.set_num_threads(2)
        try:
            A = random_matrix(rng, 8, 8, 0.4)
            B = random_matrix(rng, 8, 8, 0.4)
            C1 = grb.Matrix(grb.INT64, 8, 8)
            C2 = grb.Matrix(grb.INT64, 8, 8)
            s = grb.PLUS_TIMES[grb.INT64]
            # different operand orders: no CSE, so the level stays width 2
            grb.mxm(C1, None, None, s, A, B)
            grb.mxm(C2, None, None, s, B, A)
            grb.wait()  # level of width 2 must drain serially without error
        finally:
            parallel.set_num_threads(1)
        assert context.queue_stats()["max_width"] >= 2


class TestKnobs:
    def test_unknown_knob_rejected(self):
        with pytest.raises(grb.InvalidValue):
            planner.configure(vectorize=True)

    def test_override_restores(self):
        planner.configure(fusion=False)
        with planner.override(fusion=True, cse=False):
            assert planner.options().fusion and not planner.options().cse
        assert not planner.options().fusion and planner.options().cse
        planner.reset_options()
        assert planner.options().fusion

    def test_disabled_planner_runs_program_order(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        planner.configure(enabled=False)
        A = random_matrix(rng, 6, 6, 0.5)
        C = grb.Matrix(grb.INT64, 6, 6)
        with trace() as t:
            # dead op: would be elided with the planner on
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.ewise_add(C, None, None, grb.PLUS[grb.INT64], A, A)
            grb.wait()
        assert t.elided == 0
        assert t.count("mxm") == 1 and t.count("eWiseAdd") == 1


# --------------------------------------------------------------------------
# Property-style equivalence: randomized sequences, blocking vs planner
# --------------------------------------------------------------------------

_N = 8


def _random_program(seed: int):
    """A data-only program: list of (op-name, argument indexes/choices)."""
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(12):
        kind = rng.choice(
            ["mxm", "ewise_add", "ewise_mult", "apply", "reduce",
             "mxv", "vec_apply", "transpose"]
        )
        m = lambda: int(rng.integers(0, 4))
        v = lambda: int(rng.integers(0, 2))
        mask = int(rng.integers(0, 5)) - 1  # -1 = no mask
        accum = bool(rng.integers(0, 2))
        desc = int(rng.integers(0, 4))  # None / R / SC / RSC
        steps.append((str(kind), m(), m(), m(), v(), v(), mask, accum, desc))
    return steps


def _run_program(steps, seed: int, nonblocking: bool):
    context._reset()
    if nonblocking:
        grb.init(grb.Mode.NONBLOCKING)
    rng = np.random.default_rng(seed + 10_000)
    Ms = [random_matrix(rng, _N, _N, 0.4) for _ in range(4)]
    Vs = [random_vector(rng, _N, 0.5) for _ in range(2)]
    descs = [None, grb.DESC_R, grb.DESC_SC, grb.DESC_RSC]
    PLUS, TIMES = grb.PLUS[grb.INT64], grb.TIMES[grb.INT64]
    s = grb.PLUS_TIMES[grb.INT64]
    for kind, c, a, b, w, u, mask, accum, di in steps:
        acc = PLUS if accum else None
        mmask = Ms[mask] if 0 <= mask < 4 else None
        vmask = Vs[mask % 2] if mask >= 0 else None
        d = descs[di] if (mmask is not None or vmask is not None) else None
        if kind == "mxm":
            grb.mxm(Ms[c], mmask, acc, s, Ms[a], Ms[b], d)
        elif kind == "ewise_add":
            grb.ewise_add(Ms[c], mmask, acc, PLUS, Ms[a], Ms[b], d)
        elif kind == "ewise_mult":
            grb.ewise_mult(Ms[c], mmask, acc, TIMES, Ms[a], Ms[b], d)
        elif kind == "apply":
            grb.apply(Ms[c], mmask, acc, grb.AINV[grb.INT64], Ms[a], d)
        elif kind == "reduce":
            grb.reduce(Vs[w], vmask, acc, PLUS, Ms[a], d)
        elif kind == "mxv":
            grb.mxv(Vs[w], vmask, acc, s, Ms[a], Vs[u], d)
        elif kind == "vec_apply":
            grb.apply(Vs[w], vmask, acc, grb.AINV[grb.INT64], Vs[u], d)
        elif kind == "transpose":
            grb.transpose(Ms[c], mmask, acc, Ms[a], d)
    if nonblocking:
        grb.wait()
    return [o.extract_tuples() for o in Ms + Vs]


@pytest.mark.parametrize("seed", range(20))
def test_randomized_sequences_bit_identical(seed):
    """~20 randomized sequences (masked, accumulated, REPLACE included):
    nonblocking with every planner pass on must equal blocking bit-for-bit."""
    steps = _random_program(seed)
    want = _run_program(steps, seed, nonblocking=False)
    got = _run_program(steps, seed, nonblocking=True)
    assert context.queue_stats()["drains"] >= 1
    for w_t, g_t in zip(want, got):
        for w_arr, g_arr in zip(w_t, g_t):
            assert np.array_equal(w_arr, g_arr), f"seed {seed} diverged"
            assert w_arr.dtype == g_arr.dtype


def test_bc_example_bit_identical():
    """Fig. 3's BC_update produces identical deltas in both modes."""
    spec = importlib.util.spec_from_file_location(
        "bc_c_style",
        Path(__file__).resolve().parent.parent / "examples" / "bc_c_style.py",
    )
    bc = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bc)
    import repro.io
    from repro.capi import Ref

    s = np.arange(6)

    def run(nonblocking):
        context._reset()
        if nonblocking:
            grb.init(grb.Mode.NONBLOCKING)
        A = repro.io.rmat(6, 4, seed=7, domain=grb.INT32)
        delta = Ref()
        info = bc.BC_update(delta, A, s, len(s))
        assert info == bc.GrB_SUCCESS
        if nonblocking:
            grb.wait()
        return delta.value.to_dense(0.0)

    want = run(False)
    got = run(True)
    assert np.array_equal(want, got)
