"""Domain system (paper Table III, section III-A): built-in types,
user-defined types, and lookup."""

import numpy as np
import pytest

import repro as grb
from repro.types import (
    BUILTIN_TYPES,
    FLOAT_TYPES,
    INTEGER_TYPES,
    SIGNED_TYPES,
    UNSIGNED_TYPES,
    GrBType,
    lookup_type,
    type_new,
)


class TestBuiltinTypes:
    def test_eleven_builtin_domains(self):
        # the C API predefines bool, 4 signed, 4 unsigned, 2 float
        assert len(BUILTIN_TYPES) == 11

    @pytest.mark.parametrize("t", BUILTIN_TYPES)
    def test_builtin_flags(self, t):
        assert t.is_builtin and not t.is_udt

    def test_classification(self):
        assert grb.BOOL.is_bool
        assert all(t.is_integral for t in INTEGER_TYPES)
        assert all(t.is_signed for t in SIGNED_TYPES)
        assert all(t.is_unsigned for t in UNSIGNED_TYPES)
        assert all(t.is_float for t in FLOAT_TYPES)

    def test_bit_widths(self):
        assert grb.INT8.nbits == 8
        assert grb.INT64.nbits == 64
        assert grb.FP32.nbits == 32
        assert grb.UINT16.nbits == 16

    def test_numpy_dtypes(self):
        assert grb.INT32.np_dtype == np.dtype(np.int32)
        assert grb.FP64.np_dtype == np.dtype(np.float64)
        assert grb.BOOL.np_dtype == np.dtype(bool)

    def test_builtin_equality_by_name(self):
        assert grb.INT32 == lookup_type("GrB_INT32")
        assert grb.INT32 != grb.INT64
        assert hash(grb.FP32) == hash(lookup_type("FP32"))

    def test_lookup_short_and_spec_names(self):
        assert lookup_type("FP64") is grb.FP64
        assert lookup_type("GrB_BOOL") is grb.BOOL

    def test_lookup_unknown_raises(self):
        with pytest.raises(grb.InvalidValue):
            lookup_type("GrB_COMPLEX128")

    def test_validate_scalar_builtin(self):
        assert grb.INT32.validate_scalar(7) == 7
        assert grb.BOOL.validate_scalar(1) == True  # noqa: E712

    def test_empty_array_dtype(self):
        a = grb.FP32.empty_array(5)
        assert a.dtype == np.float32 and len(a) == 5


class TestUserDefinedTypes:
    def test_type_new(self):
        T = type_new("Pair", tuple)
        assert T.is_udt and not T.is_builtin
        assert T.np_dtype == np.dtype(object)
        assert T.udt_class is tuple

    def test_udt_identity_semantics(self):
        # two registrations are distinct domains even with the same storage
        T1 = type_new("X", frozenset)
        T2 = type_new("X", frozenset)
        assert T1 != T2
        assert T1 == T1

    def test_udt_validate_scalar(self):
        T = type_new("FS", frozenset)
        assert T.validate_scalar(frozenset({1})) == frozenset({1})
        with pytest.raises(grb.InvalidValue):
            T.validate_scalar([1, 2])

    def test_type_requires_name(self):
        with pytest.raises(grb.NullPointer):
            GrBType("", np.dtype(np.int32))

    def test_object_dtype_requires_udt_class(self):
        with pytest.raises(grb.InvalidValue):
            GrBType("Anon", np.dtype(object))
