"""Request-scoped tracing: TraceContext propagation, planner provenance
merge, per-request latency decomposition, SLO tracking, and the live
telemetry endpoints."""

import json
import re
import socket
import time

import numpy as np
import pytest

import repro as grb
from repro import context, obs
from repro.obs import tracing
from repro.obs.export import prometheus_text, timeline_html
from repro.obs.tracing import DrainAccounting, TraceContext
from repro.service import Client, Service, ServiceConfig, TCPClient
from repro.service.loadgen import build_streams, run_direct, timing_summary

SEMIRING = "GrB_PLUS_TIMES_SEMIRING_FP64"
ENTRIES = [[0, 1, 1.0], [1, 2, 2.0], [2, 3, 3.0], [3, 0, 4.0], [0, 2, 5.0]]


def _random_matrix(rng, n, density=0.4):
    A = grb.Matrix(grb.FP64, n, n)
    cells = [(i, j) for i in range(n) for j in range(n)]
    idx = rng.choice(len(cells), max(1, int(len(cells) * density)), replace=False)
    rows = np.array([cells[k][0] for k in idx])
    cols = np.array([cells[k][1] for k in idx])
    A.build(rows, cols, rng.random(len(idx)) + 0.5)
    return A


# --------------------------------------------------------------------------
# TraceContext plumbing
# --------------------------------------------------------------------------

class TestTraceContext:
    def test_mint_is_unique(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id

    def test_wire_round_trip(self):
        t = TraceContext.mint(request_id="req-9")
        assert TraceContext.from_wire(t.to_wire()) == t

    @pytest.mark.parametrize("doc", [
        None, "nope", 7, {}, {"trace_id": "x"}, {"request_id": "y"},
        {"trace_id": 1, "request_id": "y"},
    ])
    def test_from_wire_malformed_is_none(self, doc):
        # tracing is best-effort: bad wire input must never raise
        assert TraceContext.from_wire(doc) is None

    def test_use_nests_and_restores(self):
        t1, t2 = TraceContext.mint(), TraceContext.mint()
        assert tracing.current_trace() is None
        with tracing.use(t1):
            assert tracing.current_trace() is t1
            with tracing.use(t2):
                assert tracing.current_trace() is t2
            assert tracing.current_trace() is t1
        assert tracing.current_trace() is None


class TestDrainAccounting:
    def test_shares_sum_to_wall_by_flops(self):
        acc = DrainAccounting()
        acc.note(["a"], 0.001, 300)
        acc.note(["b"], 0.009, 100)
        shares = acc.shares(1.0)
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shared_node_splits_weight(self):
        acc = DrainAccounting()
        acc.note(["a", "b"], 0.002, 100)
        shares = acc.shares(2.0)
        assert shares["a"] == pytest.approx(shares["b"]) == pytest.approx(1.0)

    def test_seconds_fallback_when_no_flops(self):
        acc = DrainAccounting()
        acc.note(["a"], 0.003, 0)
        acc.note(["b"], 0.001, 0)
        shares = acc.shares(4.0)
        assert shares["a"] == pytest.approx(3.0)
        assert shares["b"] == pytest.approx(1.0)

    def test_empty_drain_has_no_shares(self):
        assert DrainAccounting().shares(1.0) == {}


# --------------------------------------------------------------------------
# Planner provenance: stamps survive fusion and CSE (merge, not loss)
# --------------------------------------------------------------------------

class TestPlannerProvenance:
    def test_deferred_op_span_carries_request_id(self):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(7)
        A = _random_matrix(rng, 8)
        C = grb.Matrix(grb.FP64, 8, 8)
        t = TraceContext.mint(request_id="solo")
        with tracing.use(t):
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
        with obs.capture() as cap:
            grb.wait()
        ops = [sp for sp in cap.spans if sp.kind == "op" and sp.deferred]
        assert ops and all(
            sp.attrs.get("request_ids") == ["solo"] for sp in ops
        )
        assert all(sp.attrs.get("trace_ids") == [t.trace_id] for sp in ops)

    def test_kernel_span_inherits_request_ids(self):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(7)
        A = _random_matrix(rng, 10)
        C = grb.Matrix(grb.FP64, 10, 10)
        with tracing.use(TraceContext.mint(request_id="kern")):
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
        with obs.capture() as cap:
            grb.wait()
        kernels = [sp for sp in cap.spans if sp.kind == "kernel"]
        assert kernels and all(
            sp.attrs.get("request_ids") == ["kern"] for sp in kernels
        )

    def test_cse_source_absorbs_duplicate_ids(self):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(11)
        A = _random_matrix(rng, 8)
        C = grb.Matrix(grb.FP64, 8, 8)
        D = grb.Matrix(grb.FP64, 8, 8)
        s = grb.PLUS_TIMES[grb.FP64]
        with tracing.use(TraceContext.mint(request_id="first")):
            grb.mxm(C, None, None, s, A, A)
        with tracing.use(TraceContext.mint(request_id="second")):
            grb.mxm(D, None, None, s, A, A)
        with obs.capture() as cap:
            grb.wait()
        assert context.queue_stats()["cse"] >= 1
        # the kernel that actually ran serves both requests
        sources = [sp for sp in cap.spans
                   if sp.kind == "op" and sp.deferred
                   and "cse_of" not in sp.attrs]
        assert any(
            sp.attrs.get("request_ids") == ["first", "second"]
            for sp in sources
        )
        # the elided duplicate keeps only its own id
        dups = [sp for sp in cap.spans if "cse_of" in sp.attrs]
        assert dups and dups[0].attrs["request_ids"] == ["second"]

    def test_untraced_ops_have_no_provenance(self):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(5)
        A = _random_matrix(rng, 8)
        C = grb.Matrix(grb.FP64, 8, 8)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
        with obs.capture() as cap:
            grb.wait()
        ops = [sp for sp in cap.spans if sp.kind == "op" and sp.deferred]
        assert ops and all("request_ids" not in sp.attrs for sp in ops)


# --------------------------------------------------------------------------
# The pinned cross-request fusion test: two requests, one kernel, both ids
# --------------------------------------------------------------------------

class TestServiceProvenance:
    def test_fused_span_carries_both_request_ids(self):
        """Two requests of one batch whose deferred ops fuse: the merged
        mxm+apply span must name *both* originating requests."""
        svc = Service(ServiceConfig(workers=1, autostart=False))
        try:
            sess = svc.open_session("fuse")
            ta = TraceContext.mint(request_id="req-mxm")
            tb = TraceContext.mint(request_id="req-apply")
            f0 = svc.submit(sess, "define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [8, 8], "entries": ENTRIES,
            })
            f1 = svc.submit(sess, "program", {
                "declare": [{"name": "C", "kind": "matrix",
                             "dtype": "FP64", "shape": [8, 8]}],
                "calls": [{"kind": "mxm", "out": "C",
                           "args": {"a": "g", "b": "g",
                                    "semiring": SEMIRING}}],
            }, trace=ta)
            f2 = svc.submit(sess, "program", {
                "calls": [{"kind": "apply", "out": "C",
                           "args": {"a": "C", "unary": "GrB_AINV_FP64"}}],
            }, trace=tb)
            with obs.capture() as cap:
                svc.start()
                for f in (f0, f1, f2):
                    f.result(timeout=30)
        finally:
            svc.shutdown()
        fused = [sp for sp in cap.spans if "fused_of" in sp.attrs]
        assert fused, "the batch drain did not fuse the mxm+apply pair"
        sp = fused[0]
        assert sp.attrs["request_ids"] == ["req-apply", "req-mxm"]
        assert sorted(sp.attrs["trace_ids"]) == sorted(
            [ta.trace_id, tb.trace_id]
        )
        # kernel spans under the fused node inherit the merged provenance
        kernels = [k for k in cap.spans
                   if k.kind == "kernel" and k.parent == sp.sid]
        assert kernels and all(
            k.attrs["request_ids"] == ["req-apply", "req-mxm"]
            for k in kernels
        )

    def test_four_stream_load_attributes_every_deferred_span(self):
        """The acceptance run: 4 concurrent loadgen streams, batching on —
        every drain-scheduled op span and every kernel under one carries at
        least one originating request id."""
        streams = build_streams(seed=3, clients=4, requests=24)
        with obs.capture() as cap:
            out = run_direct(streams, seed=3, workers=2, pipeline=4)
        assert not out["errors"]
        deferred_ops = [sp for sp in cap.spans
                        if sp.kind == "op" and sp.deferred]
        assert deferred_ops, "batched load produced no drain-scheduled ops"
        for sp in deferred_ops:
            assert sp.attrs.get("request_ids"), (
                f"unattributed drain-scheduled span {sp.label!r}"
            )
        op_sids = {sp.sid for sp in deferred_ops}
        drain_kernels = [sp for sp in cap.spans
                         if sp.kind == "kernel" and sp.parent in op_sids]
        assert drain_kernels
        for sp in drain_kernels:
            assert sp.attrs.get("request_ids"), (
                f"unattributed kernel span {sp.label!r}"
            )


# --------------------------------------------------------------------------
# Per-request latency decomposition
# --------------------------------------------------------------------------

class TestTimingDecomposition:
    def test_timing_is_opt_in(self):
        with Service(workers=1) as svc:
            c = Client(svc)
            plain = c.request("define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [4, 4], "entries": ENTRIES[:3],
            })
            assert "timing" not in plain
            timed = c.request("query", {"name": "g"}, timing=True)
            assert set(timed["timing"]) >= {
                "trace_id", "request_id", "queue_wait_us", "issue_us",
                "drain_share_us", "total_us",
            }

    def test_breakdown_sums_to_wall_within_10pct(self):
        """queue-wait + issue + drain-share ≈ the request's wall latency
        (single in-flight request, so the drain share is the whole drain
        and nothing waits on batchmates)."""
        n = 56
        rng = np.random.default_rng(13)
        cells = [(i, j) for i in range(n) for j in range(n) if i != j]
        idx = rng.choice(len(cells), int(len(cells) * 0.35), replace=False)
        entries = [[int(cells[k][0]), int(cells[k][1]), 1.0] for k in idx]
        with Service(workers=1) as svc:
            c = Client(svc)
            c.define("g", "matrix", "FP64", [n, n], entries=entries)
            # several deferred products: the drain dominates the wall, so
            # fixed per-request overheads stay inside the 10% budget
            calls = [{"kind": "mxm", "out": "t",
                      "args": {"a": "g", "b": "g", "semiring": SEMIRING}}]
            calls += [{"kind": "mxm", "out": "t",
                       "args": {"a": "t", "b": "g", "semiring": SEMIRING}}
                      for _ in range(3)]
            t0 = time.monotonic()
            out = c.program(
                calls,
                declare=[{"name": "t", "kind": "matrix", "dtype": "FP64",
                          "shape": [n, n]}],
                timing=True,
            )
            wall_us = (time.monotonic() - t0) * 1e6
        tm = out["timing"]
        explained = tm["queue_wait_us"] + tm["issue_us"] + tm["drain_share_us"]
        assert explained == pytest.approx(tm["total_us"], rel=0.10), (
            f"decomposition {explained:.0f}us vs total {tm['total_us']:.0f}us"
        )
        # the server-side total itself tracks the client-observed wall
        assert tm["total_us"] == pytest.approx(wall_us, rel=0.25)

    def test_stats_exposes_breakdown_histograms(self):
        with Service(workers=1) as svc:
            c = Client(svc)
            c.request("define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [4, 4], "entries": ENTRIES[:3],
            }, timing=True)
            st = svc.stats()
        bd = st["breakdown"]
        assert set(bd) == {"queue_wait", "issue", "drain", "drain_share"}
        assert bd["queue_wait"]["count"] >= 1
        assert bd["issue"]["p99_us"] is not None

    def test_timing_summary_aggregates(self):
        results = [[
            {"timing": {"queue_wait_us": 10.0, "issue_us": 20.0,
                        "drain_share_us": 70.0, "total_us": 100.0}},
            {"nvals": 3},
        ]]
        s = timing_summary(results)
        assert s["count"] == 1
        assert s["coverage_mean"] == pytest.approx(1.0)
        assert s["issue_us"]["p99"] == 20.0


# --------------------------------------------------------------------------
# SLO tracking through the service
# --------------------------------------------------------------------------

class TestServiceSLO:
    def test_slo_block_in_stats_and_health(self):
        with Service(workers=1, slo_p99_ms=10_000.0) as svc:
            c = Client(svc)
            c.request("define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [4, 4], "entries": ENTRIES[:3],
            })
            st = svc.stats()
            assert st["slo"]["target_p99_us"] == pytest.approx(1e7)
            assert st["slo"]["window_count"] >= 1
            assert st["slo"]["window_met"] is True
            h = svc.health()
            assert h["status"] == "ok"
            assert h["slo_met"] is True

    def test_impossible_slo_burns_budget(self):
        with Service(workers=1, slo_p99_ms=1e-6) as svc:
            c = Client(svc)
            for _ in range(3):
                try:
                    c.request("query", {"name": "nope"})
                except Exception:
                    pass
            s = svc.slo.summary()
            assert s["breaches"] >= 1
            assert s["burn_rate"] > 1.0
            assert s["window_met"] is False

    def test_no_slo_configured_is_none(self):
        with Service(workers=1) as svc:
            assert svc.stats()["slo"] is None
            assert "slo_met" not in svc.health()


# --------------------------------------------------------------------------
# Live endpoints: wire tracing, metrics text, health, timeline export
# --------------------------------------------------------------------------

def _read_all(host, port, payload: bytes) -> bytes:
    s = socket.create_connection((host, port), timeout=10)
    try:
        s.sendall(payload)
        buf = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                return buf
            buf += chunk
    finally:
        s.close()


_PROM_LINE = re.compile(
    r"^(# (TYPE|HELP) [a-zA-Z_][a-zA-Z0-9_]* \w+"
    r"|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [^ ]+)$"
)


class TestLiveEndpoints:
    def test_trace_rides_the_wire(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            c = TCPClient(host, port)
            c.define("g", "matrix", "FP64", [4, 4], entries=ENTRIES[:3])
            mine = TraceContext.mint(request_id="wire-req-1")
            out = c.call("query", {"name": "g"}, trace=mine, timing=True)
            assert out["timing"]["request_id"] == "wire-req-1"
            assert out["timing"]["trace_id"] == mine.trace_id
            c.close()

    def test_health_admin_and_parity(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            c = TCPClient(host, port)
            remote = c.health()
            local = srv.service.health()
            assert remote["status"] == local["status"] == "ok"
            assert set(remote) == set(local)
            c.close()

    def test_plaintext_metrics_is_valid_prometheus(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            c = TCPClient(host, port)
            c.define("g", "matrix", "FP64", [4, 4], entries=ENTRIES[:3])
            c.close(close_session=False)
            text = _read_all(host, port, b"metrics\n").decode()
        lines = [ln for ln in text.splitlines() if ln]
        assert lines and text.endswith("\n")
        for ln in lines:
            assert _PROM_LINE.match(ln), f"invalid exposition line: {ln!r}"
        assert "repro_service_admitted_total" in text
        assert 'repro_service_latency_us_bucket{le="+Inf"}' in text
        assert "repro_service_up 1" in text

    def test_plaintext_health_probe(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            doc = json.loads(_read_all(host, port, b"health\n").decode())
        assert doc["status"] == "ok"
        assert doc["workers"] >= 1

    def test_json_protocol_still_works_after_plain_probe(self):
        from repro.service.server import serve

        with serve(port=0) as srv:
            host, port = srv.address
            _read_all(host, port, b"health\n")
            c = TCPClient(host, port)
            assert c.ping() == {"pong": True}
            c.close()


class TestExporters:
    def test_prometheus_text_histogram_is_cumulative(self):
        snap = {
            "counters": {"kernel.invocations": 2},
            "histograms": {"service.latency_us": {
                "count": 3, "total": 300.0, "min": 50.0, "max": 200.0,
                "buckets": [0, 0, 2, 1] + [0] * 12,
            }},
        }
        text = prometheus_text(snap)
        assert "repro_kernel_invocations_total 2" in text
        assert 'repro_service_latency_us_bucket{le="64"} 2' in text
        assert 'repro_service_latency_us_bucket{le="256"} 3' in text
        assert 'repro_service_latency_us_bucket{le="+Inf"} 3' in text
        assert "repro_service_latency_us_count 3" in text

    def test_chrome_trace_has_process_and_thread_names(self):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(3)
        A = _random_matrix(rng, 8)
        C = grb.Matrix(grb.FP64, 8, 8)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
        with obs.capture() as cap:
            grb.wait()
        doc = cap.chrome_trace()
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "process_sort_index",
                "thread_name", "thread_sort_index"} <= names
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"]

    def test_timeline_html_renders_request_lanes(self):
        svc = Service(ServiceConfig(workers=1, autostart=False))
        try:
            sess = svc.open_session("tl")
            t = TraceContext.mint(request_id="lane-1")
            f0 = svc.submit(sess, "define", {
                "name": "g", "kind": "matrix", "dtype": "FP64",
                "shape": [8, 8], "entries": ENTRIES,
            }, trace=t)
            f1 = svc.submit(sess, "program", {
                "declare": [{"name": "C", "kind": "matrix",
                             "dtype": "FP64", "shape": [8, 8]}],
                "calls": [{"kind": "mxm", "out": "C",
                           "args": {"a": "g", "b": "g",
                                    "semiring": SEMIRING}}],
            }, trace=t)
            with obs.capture() as cap:
                svc.start()
                f0.result(timeout=30), f1.result(timeout=30)
        finally:
            svc.shutdown()
        html = timeline_html(
            cap.spans,
            request_timings={"lane-1": {
                "queue_wait_us": 10.0, "issue_us": 20.0,
                "drain_share_us": 30.0,
            }},
        )
        assert "<!doctype html>" in html
        assert "request lane-1" in html
        assert "drain-share 30us" in html
        assert "Per-thread flamegraph" in html

    def test_timeline_html_empty_capture(self):
        html = timeline_html([])
        assert "no spans captured" in html

    def test_capture_export_timeline(self, tmp_path):
        grb.init(grb.Mode.NONBLOCKING)
        rng = np.random.default_rng(3)
        A = _random_matrix(rng, 8)
        C = grb.Matrix(grb.FP64, 8, 8)
        with tracing.use(TraceContext.mint(request_id="f")):
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
        with obs.capture() as cap:
            grb.wait()
        out = tmp_path / "timeline.html"
        cap.export_timeline(out)
        assert "request f" in out.read_text()
