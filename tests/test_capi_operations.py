"""Shim coverage for the remaining GrB_* operation wrappers."""

import numpy as np
import pytest

import repro as grb
from repro import capi
from repro.capi import GrB_ALL, GrB_INT64, GrB_NULL, GrB_SUCCESS, Ref
from repro.ops import binary, index_unary, unary


@pytest.fixture
def A():
    return grb.Matrix.from_dense(GrB_INT64, [[1, 2, 0], [0, 3, 4], [5, 0, 6]])


S = grb.algebra.PLUS_TIMES[GrB_INT64]


class TestOperationWrappers:
    def test_mxv_vxm(self, A):
        u = grb.Vector.from_coo(GrB_INT64, 3, [0, 1, 2], [1, 1, 1])
        w = grb.Vector(GrB_INT64, 3)
        assert capi.GrB_mxv(w, GrB_NULL, GrB_NULL, S, A, u, GrB_NULL) == GrB_SUCCESS
        assert w.to_dense(0).tolist() == [3, 7, 11]
        assert capi.GrB_vxm(w, GrB_NULL, GrB_NULL, S, u, A, GrB_NULL) == GrB_SUCCESS
        assert w.to_dense(0).tolist() == [6, 5, 10]

    def test_ewise_add_mult(self, A):
        C = grb.Matrix(GrB_INT64, 3, 3)
        assert (
            capi.GrB_eWiseAdd(
                C, GrB_NULL, GrB_NULL, binary.PLUS[GrB_INT64], A, A, GrB_NULL
            )
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == 2 * A.to_dense(0)).all()
        assert (
            capi.GrB_eWiseMult(
                C, GrB_NULL, GrB_NULL, binary.TIMES[GrB_INT64], A, A, GrB_NULL
            )
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == A.to_dense(0) ** 2).all()

    def test_apply_select_transpose(self, A):
        C = grb.Matrix(GrB_INT64, 3, 3)
        assert (
            capi.GrB_apply(
                C, GrB_NULL, GrB_NULL, unary.AINV[GrB_INT64], A, GrB_NULL
            )
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == -A.to_dense(0)).all()
        assert (
            capi.GrB_select(
                C, GrB_NULL, GrB_NULL, index_unary.TRIL, A, 0, GrB_NULL
            )
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == np.tril(A.to_dense(0))).all()
        assert (
            capi.GrB_transpose(C, GrB_NULL, GrB_NULL, A, GrB_NULL)
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == A.to_dense(0).T).all()

    def test_extract_assign(self, A):
        C = grb.Matrix(GrB_INT64, 2, 2)
        assert (
            capi.GrB_extract(C, GrB_NULL, GrB_NULL, A, [0, 2], [0, 2], GrB_NULL)
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == A.to_dense(0)[np.ix_([0, 2], [0, 2])]).all()
        D = grb.Matrix(GrB_INT64, 3, 3)
        assert (
            capi.GrB_assign(D, GrB_NULL, GrB_NULL, 9, GrB_ALL, GrB_ALL, GrB_NULL)
            == GrB_SUCCESS
        )
        assert (D.to_dense(0) == 9).all()

    def test_reduce_vector_form(self, A):
        w = grb.Vector(GrB_INT64, 3)
        assert (
            capi.GrB_reduce(
                w, GrB_NULL, GrB_NULL, grb.monoid("GrB_PLUS_MONOID_INT64"),
                A, GrB_NULL,
            )
            == GrB_SUCCESS
        )
        assert w.to_dense(0).tolist() == [3, 7, 11]

    def test_kronecker(self, A):
        B = grb.Matrix.from_dense(GrB_INT64, [[1, 0], [0, 1]])
        C = grb.Matrix(GrB_INT64, 6, 6)
        assert (
            capi.GrB_kronecker(
                C, GrB_NULL, GrB_NULL, binary.TIMES[GrB_INT64], A, B, GrB_NULL
            )
            == GrB_SUCCESS
        )
        assert (C.to_dense(0) == np.kron(A.to_dense(0), B.to_dense(0))).all()

    def test_resize_and_diag(self, A):
        assert capi.GrB_Matrix_resize(A, 2, 2) == GrB_SUCCESS
        assert A.shape == (2, 2)
        v = grb.Vector.from_coo(GrB_INT64, 2, [0, 1], [5, 6])
        D = Ref()
        assert capi.GrB_Matrix_diag(D, v, 0) == GrB_SUCCESS
        assert D.value.to_dense(0).tolist() == [[5, 0], [0, 6]]

    def test_vector_build_and_tuples(self):
        w = Ref()
        capi.GrB_Vector_new(w, GrB_INT64, 4)
        assert (
            capi.GrB_Vector_build(w.value, [0, 3], [7, 8]) == GrB_SUCCESS
        )
        I, X = Ref(), Ref()
        assert capi.GrB_Vector_extractTuples(I, X, w.value) == GrB_SUCCESS
        assert I.value.tolist() == [0, 3] and X.value.tolist() == [7, 8]
        assert capi.GrB_Vector_clear(w.value) == GrB_SUCCESS
        nv = Ref()
        capi.GrB_Vector_nvals(nv, w.value)
        assert nv.value == 0

    def test_descriptor_wrappers(self):
        d = Ref()
        assert capi.GrB_Descriptor_new(d) == GrB_SUCCESS
        assert (
            capi.GrB_Descriptor_set(d.value, capi.GrB_OUTP, capi.GrB_REPLACE)
            == GrB_SUCCESS
        )
        assert (
            capi.GrB_Descriptor_set(d.value, capi.GrB_OUTP, capi.GrB_TRAN)
            == grb.Info.INVALID_VALUE
        )
