"""Predefined unary operators (Table IV: GrB_MINV_FP32, GrB_IDENTITY_BOOL, ...)."""

import numpy as np
import pytest

import repro as grb
from repro.ops import unary


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        ["GrB_IDENTITY_BOOL", "GrB_MINV_FP32", "GrB_AINV_INT32",
         "GrB_ABS_FP64", "GrB_LNOT", "GxB_ONE_INT64"],
    )
    def test_spec_names_resolve(self, name):
        assert grb.unary_op(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(grb.InvalidValue):
            grb.unary_op("GrB_SQRT_INT32")


class TestIdentity:
    def test_identity_preserves(self):
        assert unary.IDENTITY[grb.INT32](42) == 42
        assert unary.IDENTITY[grb.BOOL](True) == True  # noqa: E712

    def test_table4_identity_bool_casts_in_bc(self):
        # Fig. 3 line 41 relies on IDENTITY_BOOL operating after an
        # implicit INT32 -> BOOL cast; the op itself is bool -> bool
        op = unary.IDENTITY[grb.BOOL]
        assert op.d_in is grb.BOOL and op.d_out is grb.BOOL


class TestAInv:
    def test_signed(self):
        assert unary.AINV[grb.INT32](5) == -5

    def test_unsigned_wraps(self):
        assert unary.AINV[grb.UINT8](1) == 255

    def test_float(self):
        assert unary.AINV[grb.FP64](-2.5) == 2.5

    def test_bool_is_identity(self):
        assert unary.AINV[grb.BOOL](True) == True  # noqa: E712


class TestMInv:
    def test_float_reciprocal(self):
        assert unary.MINV[grb.FP32](2.0) == np.float32(0.5)
        assert unary.MINV[grb.FP64](4.0) == 0.25

    def test_float_reciprocal_of_zero_is_inf(self):
        assert unary.MINV[grb.FP64](0.0) == np.inf

    def test_integer_truncates(self):
        op = unary.MINV[grb.INT32]
        assert op(1) == 1
        assert op(2) == 0
        assert op(-1) == -1
        assert op(0) == 0  # total function: no exception

    def test_minv_fp32_is_fig3_nspinv(self):
        # 1./numsp with numsp counts: reciprocal of path counts
        op = unary.MINV[grb.FP32]
        vals = op.apply_array(np.array([1, 2, 4], dtype=np.float32))
        assert vals.tolist() == [1.0, 0.5, 0.25]


class TestOthers:
    def test_abs(self):
        assert unary.ABS[grb.INT32](-7) == 7
        assert unary.ABS[grb.FP64](-1.5) == 1.5
        assert unary.ABS[grb.UINT16](9) == 9

    def test_lnot(self):
        assert unary.LNOT(True) == False  # noqa: E712
        assert unary.LNOT(False) == True  # noqa: E712

    def test_one(self):
        assert unary.ONE[grb.FP64](123.0) == 1.0
        assert unary.ONE[grb.INT8](-9) == 1

    def test_bnot(self):
        assert unary.BNOT[grb.UINT8](0) == 255
        assert unary.BNOT[grb.INT16](0) == -1

    def test_user_defined(self):
        sq = grb.unary_op_new(lambda x: x * x, grb.INT64, grb.INT64, name="sq")
        assert sq(9) == 81
        out = sq.apply_array(np.array([1, 2, 3], dtype=np.int64))
        assert out.tolist() == [1, 4, 9]


class TestArrayScalarAgreement:
    @pytest.mark.parametrize(
        "fam", [unary.IDENTITY, unary.AINV, unary.MINV, unary.ABS, unary.ONE]
    )
    @pytest.mark.parametrize("t", [grb.INT16, grb.UINT8, grb.FP32, grb.BOOL])
    def test_agreement(self, fam, t, rng):
        op = fam[t]
        if t.is_bool:
            x = rng.integers(0, 2, 16).astype(bool)
        elif t.is_integral:
            lo = 0 if t.is_unsigned else -50
            x = rng.integers(lo, 50, 16).astype(t.np_dtype)
        else:
            x = rng.uniform(-5, 5, 16).astype(t.np_dtype)
        arr = op.apply_array(x)
        for k in range(len(x)):
            assert op(x[k]) == arr[k], (op.name, x[k])


class TestFloatMath:
    """GxB float-math families (SQRT/EXP/LOG): float domains only, with
    C math.h domain-error semantics (NaN / -inf land in the output)."""

    def test_values(self):
        assert unary.SQRT[grb.FP64](4.0) == 2.0
        assert unary.SQRT[grb.FP32](9.0) == np.float32(3.0)
        assert unary.EXP[grb.FP64](0.0) == 1.0
        assert unary.LOG[grb.FP64](1.0) == 0.0
        assert unary.LOG[grb.FP64](np.e) == pytest.approx(1.0)

    def test_matches_numpy_in_the_native_precision(self):
        # the kernel must run numpy's float32-native loop, not compute in
        # float64 and round (those differ at the last ulp)
        x = np.linspace(0.1, 7.0, 23, dtype=np.float32)
        assert np.array_equal(unary.SQRT[grb.FP32].apply_array(x), np.sqrt(x))
        assert np.array_equal(unary.EXP[grb.FP32].apply_array(x), np.exp(x))
        assert np.array_equal(unary.LOG[grb.FP32].apply_array(x), np.log(x))

    def test_domain_errors_follow_math_h(self):
        assert np.isnan(unary.SQRT[grb.FP64](-1.0))
        assert np.isnan(unary.LOG[grb.FP64](-1.0))
        assert unary.LOG[grb.FP64](0.0) == -np.inf
        assert unary.EXP[grb.FP64](-np.inf) == 0.0
        assert unary.EXP[grb.FP64](1e9) == np.inf

    def test_spec_names_and_float_only_domains(self):
        assert grb.unary_op("GxB_SQRT_FP64").name == "GxB_SQRT_FP64"
        assert grb.unary_op("GxB_EXP_FP32").name == "GxB_EXP_FP32"
        assert grb.unary_op("LOG_FP64").name == "GxB_LOG_FP64"
        for bad in ("GxB_SQRT_INT32", "GxB_EXP_BOOL", "GxB_LOG_UINT8"):
            with pytest.raises(grb.InvalidValue):
                grb.unary_op(bad)

    def test_registered_in_the_family_table(self):
        for name in ("SQRT", "EXP", "LOG"):
            assert name in unary.ALL_UNARY_FAMILIES
