"""Online anomaly detection: EWMA/MAD baselines, the three-guard
deviation test, sustained-deviation flagging with automatic dump, health
degradation, and the zero-false-positive fuzz run.
"""

from __future__ import annotations

import json
import time

import pytest

import repro as grb
from repro.obs import diag
from repro.obs.diag.anomaly import LOCAL_WORKER, AnomalyDetector
from repro.obs.diag.recorder import FlightRecorder

from tests.conftest import random_matrix


@pytest.fixture(autouse=True)
def _clean_diag():
    yield
    diag.uninstall()


def _detector(**kw) -> AnomalyDetector:
    base = dict(
        alpha=0.25, threshold=4.0, min_ratio=3.0, min_us=50.0,
        min_samples=5, sustain=3, window_s=10.0,
    )
    base.update(kw)
    return AnomalyDetector(**base)


class TestDetectorUnit:
    def test_learns_baseline_without_flagging(self):
        det = _detector()
        for _ in range(50):
            assert det.observe("mxm", "interpreter", LOCAL_WORKER,
                               seconds=100e-6) is None
        ewma, dev, n, _rate = det.baseline("mxm", "interpreter")
        assert ewma == pytest.approx(100.0, rel=0.01)
        assert n == 50
        assert det.suspects() == []

    def test_three_guards_each_block_alone(self):
        # score high but latency under the absolute floor: never a deviation
        det = _detector(min_us=1e6)
        for _ in range(20):
            det.observe("k", "b", 0, seconds=100e-6)
        for _ in range(10):
            det.observe("k", "b", 0, seconds=5000e-6)
        assert det.suspects() == []
        # score high, floor cleared, but below the baseline multiple
        det = _detector(min_ratio=100.0)
        for _ in range(20):
            det.observe("k", "b", 0, seconds=100e-6)
        for _ in range(10):
            det.observe("k", "b", 0, seconds=5000e-6)
        assert det.suspects() == []
        # too few samples: the baseline is still warming up
        det = _detector(min_samples=1000)
        for _ in range(20):
            det.observe("k", "b", 0, seconds=100e-6)
        for _ in range(10):
            det.observe("k", "b", 0, seconds=5000e-6)
        assert det.suspects() == []

    def test_sustained_deviation_flags_and_quarantines(self):
        det = _detector()
        for _ in range(20):
            det.observe("mxm", "interpreter", LOCAL_WORKER, seconds=100e-6)
        before = det.baseline("mxm", "interpreter")[0]
        suspects = []
        for _ in range(3):
            s = det.observe("mxm", "interpreter", LOCAL_WORKER,
                            seconds=10_000e-6)
            if s:
                suspects.append(s)
        assert len(suspects) == 1
        s = suspects[0]
        assert s["kernel"] == "mxm" and s["backend"] == "interpreter"
        assert s["latency_us"] == pytest.approx(10_000, rel=0.01)
        # quarantine: the slow burst must not have taught the baseline
        assert det.baseline("mxm", "interpreter")[0] == pytest.approx(
            before, rel=1e-6
        )
        assert det.suspects() and det.suspects()[0]["kernel"] == "mxm"

    def test_strikes_outside_window_do_not_accumulate(self):
        now = [0.0]
        det = _detector(window_s=1.0, clock=lambda: now[0])
        for _ in range(20):
            det.observe("k", "b", 0, seconds=100e-6)
        for _ in range(5):
            # one deviation per 2 seconds: never 3 inside any 1s window
            assert det.observe("k", "b", 0, seconds=10_000e-6) is None
            now[0] += 2.0
        assert det.suspects() == []

    def test_suspects_expire_after_ttl(self):
        now = [0.0]
        det = _detector(suspect_ttl_s=5.0, clock=lambda: now[0])
        for _ in range(20):
            det.observe("k", "b", 0, seconds=100e-6)
        for _ in range(3):
            det.observe("k", "b", 0, seconds=10_000e-6)
        assert det.suspects()
        now[0] += 10.0
        assert det.suspects() == []

    def test_per_worker_keys_are_independent(self):
        det = _detector()
        for w in (0, 1):
            for _ in range(20):
                det.observe("shard.mxm", "shard", w, seconds=100e-6)
        for _ in range(3):
            det.observe("shard.mxm", "shard", 1, seconds=10_000e-6)
        sus = det.suspects()
        assert len(sus) == 1 and sus[0]["worker"] == 1
        # worker 0's baseline is untouched
        assert det.baseline("shard.mxm", "shard", 0)[0] == pytest.approx(
            100.0, rel=0.05
        )


class TestPlannedDrainIntegration:
    """The acceptance pin: an artificially slowed kernel (monkeypatched
    sleep) is flagged within one rolling window and dumps the recorder."""

    def test_slowed_kernel_flagged_and_dumped(self, tmp_path, monkeypatch,
                                              rng):
        from repro.operations import common as op_common

        # min_us well above an honest 10x10 mxm so organic jitter in the
        # warm-up can never strike; the 20ms sleep clears it easily
        rec = FlightRecorder(dump_dir=str(tmp_path))
        det = _detector(min_us=2000.0)
        diag.install(recorder=rec, detector=det)

        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 10, 10, 0.3, domain=grb.FP64)

        def drain_once():
            C = grb.Matrix(grb.FP64, 10, 10)
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
            grb.wait()

        for _ in range(12):  # warm the per-(mxm, interpreter) baseline
            drain_once()
        assert det.baseline("mxm", "interpreter") is not None
        assert det.suspects() == []

        real = op_common.execute_standard

        def slowed(spec, *a, **kw):
            time.sleep(0.02)
            return real(spec, *a, **kw)

        monkeypatch.setattr(op_common, "execute_standard", slowed)
        for _ in range(det.sustain):  # one rolling window's worth
            drain_once()
        sus = det.suspects()
        assert sus, "slowed kernel was not flagged within one window"
        assert sus[0]["kernel"] == "mxm"
        assert sus[0]["backend"] == "interpreter"
        assert sus[0]["latency_us"] > sus[0]["baseline_us"] * 3
        assert rec.dumps, "flagging did not dump the flight recorder"
        doc = json.loads(open(rec.dumps[-1]).read())
        assert doc["otherData"]["reason"] == "anomaly"
        assert doc["otherData"]["detail"]["kernel"] == "mxm"

    def test_health_degrades_with_named_suspects(self):
        from repro.service.service import Service, ServiceConfig

        svc = Service(ServiceConfig(workers=1))
        try:
            assert svc.health()["status"] == "ok"
            det = svc.diag_detector
            for _ in range(20):
                det.observe("mxm", "interpreter", LOCAL_WORKER,
                            seconds=100e-6)
            for _ in range(3):
                det.observe("mxm", "interpreter", LOCAL_WORKER,
                            seconds=10_000e-6)
            h = svc.health()
            assert h["status"] == "degraded"
            assert h["suspects"][0]["kernel"] == "mxm"
            assert svc.stats()["diag"]["suspects"]
        finally:
            svc.shutdown()


class TestFuzzZeroFalsePositives:
    def test_hundred_program_corpus_flags_nothing(self, tmp_path):
        """Default thresholds over 100 fuzz programs on one detector:
        organic latency variation must never produce a suspect."""
        from repro.fuzz.executor import _nb, run_optimized
        from repro.fuzz.generator import generate_program

        rec, det = diag.install(dump_dir=str(tmp_path))
        dumps_before = len(rec.dumps)
        for i in range(100):
            prog = generate_program(23, i)
            run_optimized(prog, _nb("nb-anomaly-fuzz"))
        assert det.suspects() == []
        assert det.stats()["suspects"] == 0
        assert len(rec.dumps) == dumps_before, (
            "fuzz run produced a false-positive anomaly dump"
        )
