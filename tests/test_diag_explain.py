"""Plan EXPLAIN: the rendered record must match what the planner actually
did — every contraction named, sharing request ids on CSE merges, the
chosen kernel backend — plus the wire command and the CLI entry point.
"""

from __future__ import annotations

import json

import pytest

import repro as grb
from repro import context, obs, parallel
from repro.fuzz.generator import generate_program
from repro.obs.diag import explain as diag_explain
from repro.obs.diag.__main__ import main as diag_main
from repro.obs.tracing import TraceContext
from repro.service.client import Client
from repro.service.service import Service, ServiceConfig

ENTRIES = [[0, 1, 1.0], [1, 2, 2.0], [2, 0, 3.0], [0, 3, 0.5], [3, 1, 1.5]]
SEMIRING = "GrB_PLUS_TIMES_SEMIRING_FP64"
BINOP = "GrB_PLUS_FP64"


def _two_request_batch(explain: bool = True):
    """One batch, two requests.  Each request runs

        mxm(t = g*g); apply(t = -t)   # producer→consumer: fuses
        mxm(s = g*g)                  # identical across requests: CSEs

    so one drain exhibits two fused chains plus one cross-request CSE
    merge whose surviving kernel serves both request ids.  Returns the
    (already shut down) service, responses, and the captured spans."""
    svc = Service(ServiceConfig(workers=1, autostart=False))
    try:
        sess = svc.open_session("xp")
        f0 = svc.submit(sess, "define", {
            "name": "g", "kind": "matrix", "dtype": "FP64",
            "shape": [8, 8], "entries": ENTRIES,
        })
        futs = []
        for rid in ("rq-a", "rq-b"):
            futs.append(svc.submit(sess, "program", {
                "declare": [
                    {"name": f"t_{rid}", "kind": "matrix", "dtype": "FP64",
                     "shape": [8, 8]},
                    {"name": f"s_{rid}", "kind": "matrix", "dtype": "FP64",
                     "shape": [8, 8]},
                ],
                "calls": [
                    {"kind": "mxm", "out": f"t_{rid}",
                     "args": {"a": "g", "b": "g", "semiring": SEMIRING}},
                    {"kind": "apply", "out": f"t_{rid}",
                     "args": {"a": f"t_{rid}", "unary": "GrB_AINV_FP64"}},
                    {"kind": "mxm", "out": f"s_{rid}",
                     "args": {"a": "g", "b": "g", "semiring": SEMIRING}},
                ],
            }, trace=TraceContext.mint(request_id=rid), explain=explain))
        with obs.capture() as cap:
            svc.start()
            f0.result(timeout=30)
            out = [f.result(timeout=30) for f in futs]
        return svc, out, cap.spans
    finally:
        svc.shutdown()


class TestPinnedTwoRequestBatch:
    """The acceptance pin: a fused+CSE'd two-request batch, EXPLAIN
    verified node-for-node against the planner's own counters (what the
    captured spans say actually ran)."""

    def test_explain_names_every_contraction(self):
        svc, out, spans = _two_request_batch()
        ran_fused = [sp for sp in spans if "fused_of" in sp.attrs]
        ran_cse = [sp for sp in spans if "cse_of" in sp.attrs]
        assert len(ran_fused) == 2 and len(ran_cse) == 1, (
            "batch did not fuse + CSE as pinned"
        )

        for rid, resp in zip(("rq-a", "rq-b"), out):
            record = resp["explain"]
            assert record["request_id"] == rid
            # both requests drained in one plan
            plans = record["plans"]
            assert len(plans) == 1
            p = plans[0]
            assert p["optimize"] is True
            assert p["kernel_backend"] == "interpreter"
            # the plan-level counters match what actually executed
            assert p["fused_chains"] == len(ran_fused)
            assert p["cse_merged"] == len(ran_cse)
            for node in p["nodes"]:
                assert rid in node["request_ids"]
                if node["kind"] == "fused":
                    assert node["ops"] == ["mxm", "apply"]
                    assert node["backend"] == "interpreter"
            # every request's view names its own fused contraction
            assert any(n["kind"] == "fused" for n in p["nodes"])
            text = record["text"]
            assert f"EXPLAIN for request {rid}" in text
            assert "fused chain of 2: mxm -> apply" in text
            assert "shared by: rq-a, rq-b" in text

        # the CSE'd duplicate lands in the *second* request's view and
        # points at the surviving kernel, which names both requests
        b_nodes = out[1]["explain"]["plans"][0]["nodes"]
        dup = [n for n in b_nodes if n["kind"] == "cse"]
        assert len(dup) == 1
        source_idx = dup[0]["cse_source"]
        shared = [n for n in b_nodes if n["index"] == source_idx]
        assert shared and set(shared[0]["request_ids"]) == {"rq-a", "rq-b"}
        assert "cse: reuses T of node" in out[1]["explain"]["text"]
        # the shared kernel appears in rq-a's view too
        a_nodes = out[0]["explain"]["plans"][0]["nodes"]
        assert any(
            set(n["request_ids"]) == {"rq-a", "rq-b"} for n in a_nodes
        )
        assert svc.last_explain is not None
        assert len(svc.last_explain["plans"]) >= 1

    def test_explain_is_opt_in(self):
        svc, out, _ = _two_request_batch(explain=False)
        assert all("explain" not in r for r in out)


class TestServiceSurface:
    def test_request_kwarg_roundtrip(self):
        with Service(workers=1) as svc:
            c = Client(svc)
            c.define("g", "matrix", "FP64", (4, 4), ENTRIES[:3])
            r = c.request("program", {
                "declare": [{"name": "t", "kind": "matrix", "dtype": "FP64",
                             "shape": [4, 4]}],
                "calls": [{"kind": "mxm", "out": "t",
                           "args": {"a": "g", "b": "g",
                                    "semiring": SEMIRING}}],
            }, explain=True)
            record = r["explain"]
            assert record["plans"]
            assert "memo" in record and "snapshot" in record
            assert "mxm" in record["text"]

    def test_wire_command_and_json_kind(self):
        from repro.service.server import Server

        with Server(port=0).start() as server:
            host, port = server.address
            from repro.service.client import TCPClient

            cli = TCPClient(host, port)
            try:
                # before any explain'd request the wire command reports so
                resp = server.handle_plain("explain")
                assert "no EXPLAIN record" in resp
                cli.define("g", "matrix", "FP64", (4, 4), ENTRIES[:3])
                r = cli.call("program", {
                    "declare": [{"name": "t", "kind": "matrix",
                                 "dtype": "FP64", "shape": [4, 4]}],
                    "calls": [{"kind": "mxm", "out": "t",
                               "args": {"a": "g", "b": "g",
                                        "semiring": SEMIRING}}],
                }, explain=True)
                assert r["explain"]["plans"]
                # the plaintext command renders the last collected batch
                rendered = server.handle_plain("explain")
                assert "plan 1:" in rendered
                record = cli.call("explain")
                assert record["plans"]
            finally:
                cli.close()

    def test_serial_plan_explain(self):
        """Planner off still yields a faithful program-order record."""
        from repro import planner

        with diag_explain.collect() as col:
            grb.init(grb.Mode.NONBLOCKING)
            planner.configure(enabled=False)
            A = grb.Matrix.from_coo(
                grb.FP64, 4, 4,
                [0, 1], [1, 2], [1.0, 2.0],
            )
            C = grb.Matrix(grb.FP64, 4, 4)
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
            grb.wait()
        rec = col.record()
        assert rec["plans"]
        assert rec["plans"][0]["optimize"] is False


class TestProgramCLI:
    def test_explain_program_over_fuzz_corpus(self):
        prog = generate_program(11, 0)
        record = diag_explain.explain_program(prog)
        assert record["plans"]
        text = diag_explain.render_text(record)
        assert "plan 1:" in text

    def test_cli_text_and_json(self, tmp_path, capsys):
        prog = generate_program(11, 1)
        path = tmp_path / "prog.json"
        path.write_text(prog.to_json())
        assert diag_main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "plan" in out
        assert diag_main(["explain", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["plans"]
