"""The pull-direction masked SpMV must be semantically invisible."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import PLUS_TIMES, MIN_PLUS
from repro.containers.mask import build_mask_view
from repro.io import erdos_renyi, random_vector
from repro.operations import _kernels


@pytest.fixture(scope="module")
def workload():
    A = erdos_renyi(500, 8000, seed=101, domain=grb.INT64)
    u = random_vector(500, 0.4, seed=102, domain=grb.INT64)
    return A, u


def _sparse_mask(n, k, seed):
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(n, size=k, replace=False))
    return grb.Vector.from_coo(grb.BOOL, n, idx, np.ones(k, dtype=bool))


class TestPullEqualsPush:
    @pytest.mark.parametrize("k", [1, 10, 100, 240])
    def test_masked_mxv_identical_both_directions(self, workload, k):
        A, u = workload
        m = _sparse_mask(500, k, seed=k)
        # the public op picks pull automatically for these mask sizes
        w_auto = grb.Vector(grb.INT64, 500)
        grb.mxv(w_auto, m, None, PLUS_TIMES[grb.INT64], A, u, grb.DESC_R)

        # push path computed manually, then filtered
        view = A.csr()
        u_keys, u_raw = u._content()
        keys, vals = _kernels.spmv(
            view, view.values, u_keys, u_raw, PLUS_TIMES[grb.INT64]
        )
        mv = build_mask_view(m, False, False)
        keep = mv.allows(keys)
        want = dict(zip(keys[keep].tolist(), vals[keep].tolist()))
        got = {int(i): int(v) for i, v in w_auto}
        assert got == want

    def test_pull_respects_value_masks(self):
        # a mask with stored false values: pull must use only true rows
        A = grb.Matrix.from_dense(grb.INT64, np.ones((4, 4), dtype=int))
        u = grb.Vector.from_coo(grb.INT64, 4, range(4), [1, 1, 1, 1])
        m = grb.Vector.from_coo(
            grb.BOOL, 4, [0, 1], [False, True]
        )
        w = grb.Vector(grb.INT64, 4)
        grb.mxv(w, m, None, PLUS_TIMES[grb.INT64], A, u, grb.DESC_R)
        assert {i: int(v) for i, v in w} == {1: 4}

    def test_complemented_mask_never_pulls(self):
        # SCMP masks go through push + post-filter; verify correctness
        A = grb.Matrix.from_dense(grb.INT64, np.eye(6, dtype=int) * 3)
        u = grb.Vector.from_coo(grb.INT64, 6, range(6), [2] * 6)
        m = _sparse_mask(6, 2, seed=3)
        w = grb.Vector(grb.INT64, 6)
        d = grb.Descriptor().set(grb.MASK, grb.SCMP).set(grb.OUTP, grb.REPLACE)
        grb.mxv(w, m, None, PLUS_TIMES[grb.INT64], A, u, d)
        midx, _ = m.extract_tuples()
        expect = {i: 6 for i in range(6) if i not in set(midx.tolist())}
        assert {int(i): int(v) for i, v in w} == expect

    def test_pull_with_min_plus(self, workload):
        # non-arithmetic semiring through the pull path
        A = erdos_renyi(300, 4000, seed=104, domain=grb.FP64, weighted=True)
        u = random_vector(300, 0.3, seed=105, domain=grb.FP64)
        m = _sparse_mask(300, 20, seed=106)
        w1 = grb.Vector(grb.FP64, 300)
        grb.mxv(w1, m, None, MIN_PLUS[grb.FP64], A, u, grb.DESC_R)
        # dense oracle
        Ad = A.to_dense(np.inf)
        ud = u.to_dense(np.inf)
        midx, _ = m.extract_tuples()
        for i, v in w1:
            assert int(i) in set(midx.tolist())
            want = np.min(Ad[i] + ud)
            assert float(v) == pytest.approx(want)

    def test_pull_empty_mask_rows_give_empty_result(self, workload):
        A, u = workload
        # mask rows that have no stored A entries intersecting u
        empty_rowish = grb.Vector.from_coo(grb.BOOL, 500, [499], [True])
        w = grb.Vector(grb.INT64, 500)
        grb.mxv(w, empty_rowish, None, PLUS_TIMES[grb.INT64], A, u, grb.DESC_R)
        # either row 499 intersects u or the result is empty; check vs push
        view = A.csr()
        u_keys, u_raw = u._content()
        keys, vals = _kernels.spmv(
            view, view.values, u_keys, u_raw, PLUS_TIMES[grb.INT64]
        )
        want = {
            int(k): int(v) for k, v in zip(keys, vals) if int(k) == 499
        }
        assert {int(i): int(v) for i, v in w} == want
