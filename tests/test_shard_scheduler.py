"""Drain-scheduler behavior of the processes backend: gating, fallback,
crash recovery, and the service integration knob.

Correctness of shipped kernels lives in test_shard_identity; this module
covers the scheduler's *decisions* — what ships, what stays local, and
what happens when the pool dies under a drain.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

import repro as grb
from repro import context, parallel
from repro.info import Panic
from repro.shard import pool_stats

from tests.conftest import random_matrix


def _enable_processes(threshold: int = 0) -> None:
    grb.init(grb.Mode.NONBLOCKING)
    parallel.set_backend("processes")
    parallel.set_parallel_threshold(threshold)
    parallel.set_shard_workers(2)


def _oracle_mxm(At, Bt, n, domain=grb.INT64):
    context._reset()
    A = grb.Matrix.from_coo(domain, n, n, *At)
    B = grb.Matrix.from_coo(domain, n, n, *Bt)
    C = grb.Matrix(domain, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[domain], A, B)
    return C.extract_tuples()


def test_subthreshold_work_stays_local(rng):
    """Below the parallel threshold nothing ships — IPC would dominate —
    but the drain still completes with identical results."""
    n = 24
    At = random_matrix(rng, n, n, 0.3).extract_tuples()
    Bt = random_matrix(rng, n, n, 0.3).extract_tuples()
    want = _oracle_mxm(At, Bt, n)

    context._reset()
    _enable_processes(threshold=10**9)
    before = pool_stats()["tasks_done"]
    A = grb.Matrix.from_coo(grb.INT64, n, n, *At)
    B = grb.Matrix.from_coo(grb.INT64, n, n, *Bt)
    C = grb.Matrix(grb.INT64, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    grb.wait()
    assert pool_stats()["tasks_done"] == before
    for w_arr, g_arr in zip(want, C.extract_tuples()):
        assert np.array_equal(w_arr, g_arr)


def test_non_registry_reducer_stays_local(rng):
    """reduce with a plain binary op builds an ad-hoc reducer shim the
    worker could never resolve by name; the gate must keep it local."""
    n = 24
    At = random_matrix(rng, n, n, 0.3).extract_tuples()

    def run(sharded: bool):
        context._reset()
        if sharded:
            _enable_processes()
        A = grb.Matrix.from_coo(grb.INT64, n, n, *At)
        w = grb.Vector(grb.INT64, n)
        grb.reduce(w, None, None, grb.MAX[grb.INT64], A)
        if sharded:
            grb.wait()
        return w.extract_tuples()

    want = run(sharded=False)
    before = pool_stats()["tasks_done"]
    got = run(sharded=True)
    assert pool_stats()["tasks_done"] == before
    for w_arr, g_arr in zip(want, got):
        assert np.array_equal(w_arr, g_arr)


def test_mixed_level_ships_and_runs_local_siblings(rng):
    """One level holding a shippable mxm and an unshippable ewise_add:
    the mxm goes to the pool, the ewise runs in the parent, both land."""
    n = 32
    At = random_matrix(rng, n, n, 0.3).extract_tuples()
    Bt = random_matrix(rng, n, n, 0.3).extract_tuples()

    def run(sharded: bool):
        context._reset()
        if sharded:
            _enable_processes()
        A = grb.Matrix.from_coo(grb.INT64, n, n, *At)
        B = grb.Matrix.from_coo(grb.INT64, n, n, *Bt)
        C = grb.Matrix(grb.INT64, n, n)
        E = grb.Matrix(grb.INT64, n, n)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
        grb.ewise_add(E, None, None, grb.PLUS[grb.INT64], A, B)
        if sharded:
            grb.wait()
        return C.extract_tuples(), E.extract_tuples()

    want = run(sharded=False)
    before = pool_stats()["tasks_done"]
    got = run(sharded=True)
    assert pool_stats()["tasks_done"] > before
    for w_t, g_t in zip(want, got):
        for w_arr, g_arr in zip(w_t, g_t):
            assert np.array_equal(w_arr, g_arr)


def test_worker_crash_panics_then_pool_respawns(rng):
    """A SIGKILLed worker fails the in-flight drain with Panic; the next
    drain gets a fresh pool and completes normally."""
    from repro.shard.pool import get_pool

    n = 32
    At = random_matrix(rng, n, n, 0.3).extract_tuples()
    Bt = random_matrix(rng, n, n, 0.3).extract_tuples()
    want = _oracle_mxm(At, Bt, n)

    context._reset()
    _enable_processes()
    A = grb.Matrix.from_coo(grb.INT64, n, n, *At)
    B = grb.Matrix.from_coo(grb.INT64, n, n, *Bt)
    C = grb.Matrix(grb.INT64, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    grb.wait()

    old = get_pool()
    os.kill(old.pids[0], signal.SIGKILL)
    time.sleep(0.2)
    D = grb.Matrix(grb.INT64, n, n)
    grb.mxm(D, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    with pytest.raises(Panic):
        grb.wait()
    assert old.dead

    # the failed drain poisoned D; a fresh output on a fresh pool works
    E = grb.Matrix(grb.INT64, n, n)
    grb.mxm(E, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
    grb.wait()
    assert get_pool() is not old
    for w_arr, g_arr in zip(want, E.extract_tuples()):
        assert np.array_equal(w_arr, g_arr)


def test_service_runs_with_processes_backend():
    """ServiceConfig(backend=..., shard_workers=...) reaches the parallel
    knobs and a small mixed workload completes without errors."""
    from repro.service.loadgen import build_streams, run_direct

    streams = build_streams(3, 2, 20)
    run = run_direct(streams, seed=3, backend="processes", shard_workers=2)
    assert run["errors"] == []
    assert parallel.get_backend() == "processes"
    total = sum(len(s) for s in run["results"])
    assert total == sum(len(s) for s in streams)
