"""Flight recorder: always-on span retention, dump triggers and rate
limiting, and the SIGKILL-survivable shard-worker stitch.

The recorder's contract is that the *last* N seconds of spans are
reconstructible after the fact without anyone having armed a capture —
including spans that ran in shard worker processes that are no longer
alive by the time the dump is cut.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

import repro as grb
from repro import context, obs, parallel
from repro.info import Panic
from repro.obs import diag, metrics, spans
from repro.obs.diag.__main__ import main as diag_main
from repro.obs.diag.recorder import FlightRecorder, RingSink

from tests.conftest import random_matrix


@pytest.fixture(autouse=True)
def _clean_diag():
    yield
    diag.uninstall()


def _drain_mxm(n: int = 12, seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    A = random_matrix(rng, n, n, 0.3, domain=grb.FP64)
    C = grb.Matrix(grb.FP64, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
    grb.wait()


class TestRingRetention:
    def test_spans_retained_with_capture_off(self, tmp_path):
        """No capture armed anywhere — the armed ring still sees the
        drain's spans, bounded by its capacity."""
        rec, _ = diag.install(dump_dir=str(tmp_path))
        grb.init(grb.Mode.NONBLOCKING)
        _drain_mxm()
        labels = {sp.label for sp in rec.ring.snapshot()}
        assert "mxm" in labels
        assert "drain" in {sp.kind for sp in rec.ring.snapshot()}

    def test_capacity_bounds_the_ring(self):
        ring = RingSink(capacity=8)
        for i in range(50):
            sp = ring.open(f"s{i}", "op")
            ring.close(sp)
        kept = ring.snapshot()
        assert len(kept) == 8
        assert [sp.label for sp in kept] == [f"s{i}" for i in range(42, 50)]

    def test_full_capture_still_feeds_the_ring(self, tmp_path):
        """An armed capture wins `current()`, but closed spans tee into
        the ring so the recorder never has a blind window."""
        rec, _ = diag.install(dump_dir=str(tmp_path))
        grb.init(grb.Mode.NONBLOCKING)
        with obs.capture() as cap:
            _drain_mxm()
        assert any(sp.label == "mxm" for sp in cap.spans)
        assert any(sp.label == "mxm" for sp in rec.ring.snapshot())

    def test_horizon_filters_old_spans(self, tmp_path):
        rec = FlightRecorder(horizon_s=0.05, dump_dir=str(tmp_path))
        old = rec.ring.open("ancient", "op")
        rec.ring.close(old)
        old.t0 = old.t1 = time.perf_counter() - 10.0
        fresh = rec.ring.open("fresh", "op")
        rec.ring.close(fresh)
        kept = {sp.label for sp in rec.snapshot()}
        assert kept == {"fresh"}


class TestDumps:
    def test_dump_writes_loadable_chrome_trace(self, tmp_path):
        rec, _ = diag.install(dump_dir=str(tmp_path))
        grb.init(grb.Mode.NONBLOCKING)
        _drain_mxm()
        path = diag.trigger_dump("unit-test", detail={"why": "pinned"})
        assert path is not None and os.path.exists(path)
        doc = json.loads(open(path).read())
        assert doc["otherData"]["reason"] == "unit-test"
        assert doc["otherData"]["detail"] == {"why": "pinned"}
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        # causal order: the exporter emits X events sorted by start time
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert any(e["name"] == "mxm" for e in events)

    def test_dump_validates_against_schema_cli(self, tmp_path, capsys):
        diag.install(dump_dir=str(tmp_path))
        grb.init(grb.Mode.NONBLOCKING)
        _drain_mxm()
        path = diag.trigger_dump("cli-check")
        assert diag_main(["validate-dump", path]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_rate_limit_suppresses_then_force_bypasses(self, tmp_path):
        metrics.enable()
        try:
            rec, _ = diag.install(
                dump_dir=str(tmp_path), min_dump_interval_s=3600.0
            )
            sp = rec.ring.open("x", "op")
            rec.ring.close(sp)
            assert rec.dump("first") is not None
            assert rec.dump("second") is None  # inside the interval
            assert metrics.registry.snapshot()["counters"][
                "obs.diag.dump.suppressed"
            ] == 1
            assert rec.dump("forced", force=True) is not None
            assert len(rec.dumps) == 2
        finally:
            metrics.disable()

    def test_trigger_dump_without_install_is_noop(self):
        assert diag.trigger_dump("nothing") is None


class TestShardStitch:
    """The acceptance pin: kill a shard worker mid-run; the parent's
    stitched dump still loads, is causally ordered, and names the dead
    worker's completed tasks on its own lane."""

    def _enable_processes(self):
        grb.init(grb.Mode.NONBLOCKING)
        parallel.set_backend("processes")
        parallel.set_parallel_threshold(0)
        parallel.set_shard_workers(2)

    def test_sigkilled_worker_spans_survive_in_dump(self, tmp_path, rng):
        from repro.shard.pool import get_pool

        rec, _ = diag.install(dump_dir=str(tmp_path))
        self._enable_processes()
        n = 32
        A = random_matrix(rng, n, n, 0.3)
        C = grb.Matrix(grb.INT64, n, n)
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        grb.wait()  # completes: spans shipped with each Result

        pool = get_pool()
        os.kill(pool.pids[0], signal.SIGKILL)
        time.sleep(0.2)
        D = grb.Matrix(grb.INT64, n, n)
        grb.mxm(D, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        with pytest.raises(Panic):
            grb.wait()

        # the Panic path dumped automatically
        assert rec.dumps, "worker death did not trigger a flight dump"
        doc = json.loads(open(rec.dumps[-1]).read())
        assert doc["otherData"]["reason"] == "panic"
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts), "stitched dump is not causally ordered"
        # the exporter renames lanes through thread_name metadata events;
        # stitched worker spans land on shard-worker-N lanes
        worker_tids = {
            e["tid"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
            and str(e["args"]["name"]).startswith("shard-worker-")
        }
        assert worker_tids, "no shard-worker lanes in the dump"
        worker_events = [e for e in events if e["tid"] in worker_tids]
        assert worker_events, "no stitched shard-worker spans in the dump"
        assert any(
            e["name"].startswith("shard.") for e in worker_events
        )
        assert diag_main(["validate-dump", rec.dumps[-1]]) == 0

    def test_worker_metrics_ship_without_double_counting(self, rng):
        """Counters incremented inside shard workers arrive parent-side
        exactly once (delta shipping), and survive a pool respawn."""
        from repro.shard.pool import get_pool

        metrics.enable()
        try:
            self._enable_processes()
            n = 32
            A = random_matrix(rng, n, n, 0.3)

            def tasks_counter() -> int:
                return metrics.registry.snapshot()["counters"].get(
                    "shard.worker.tasks", 0
                )

            before = tasks_counter()
            done0 = get_pool().tasks_done
            C = grb.Matrix(grb.INT64, n, n)
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.wait()
            ran = get_pool().tasks_done - done0
            assert ran > 0
            assert tasks_counter() - before == ran

            # respawn: SIGKILL one worker, fail a drain, then run again on
            # the fresh pool — the aggregate keeps the shipped history and
            # adds exactly the new tasks (a naive absolute-value merge
            # would double the old worker's total here)
            os.kill(get_pool().pids[0], signal.SIGKILL)
            time.sleep(0.2)
            D = grb.Matrix(grb.INT64, n, n)
            grb.mxm(D, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            with pytest.raises(Panic):
                grb.wait()
            mid = tasks_counter()

            E = grb.Matrix(grb.INT64, n, n)
            grb.mxm(E, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            done1 = get_pool().tasks_done
            grb.wait()
            ran2 = get_pool().tasks_done - done1
            assert ran2 > 0
            assert tasks_counter() - mid == ran2
        finally:
            metrics.disable()


class TestContextIsolation:
    def test_reset_disarms_the_ring(self, tmp_path):
        rec, _ = diag.install(dump_dir=str(tmp_path))
        assert spans.current_ring() is rec.ring
        context._reset()
        assert spans.current_ring() is None
