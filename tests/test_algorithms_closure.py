"""Transitive closure and APSP (repeated squaring over OR-AND / min-plus)."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse.csgraph import floyd_warshall

import repro as grb
from repro.algorithms import (
    apsp,
    diameter,
    eccentricity,
    radius,
    transitive_closure,
)
from repro.io import (
    cycle_graph,
    erdos_renyi,
    from_networkx,
    grid_2d,
    path_graph,
    to_networkx,
    to_scipy_csr,
)

@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


class TestTransitiveClosure:
    def test_matches_networkx(self):
        G = erdos_renyi(40, 100, seed=41)
        nxg = to_networkx(G, weighted=False)
        R = transitive_closure(G)
        want = nx.transitive_closure(nxg, reflexive=False)
        assert {(i, j) for i, j, _ in R} == set(want.edges())

    def test_path_graph_closure(self):
        P = path_graph(5)
        R = transitive_closure(P)
        assert {(i, j) for i, j, _ in R} == {
            (i, j) for i in range(5) for j in range(i + 1, 5)
        }

    def test_reflexive_option(self):
        P = path_graph(3)
        R = transitive_closure(P, reflexive=True)
        pat = {(i, j) for i, j, _ in R}
        assert all((i, i) in pat for i in range(3))

    def test_cycle_closure_is_complete(self):
        C = cycle_graph(5)
        R = transitive_closure(C)
        assert R.nvals() == 25  # every vertex reaches every vertex


class TestAPSP:
    def test_matches_floyd_warshall_weighted(self):
        G = erdos_renyi(30, 180, seed=43, domain=grb.FP64, weighted=True)
        got = apsp(G)
        S = to_scipy_csr(G)
        want = floyd_warshall(S, directed=True)
        assert np.allclose(got, want, equal_nan=True)

    def test_matches_floyd_warshall_unweighted(self):
        G = erdos_renyi(35, 140, seed=44)
        got = apsp(G)
        S = to_scipy_csr(G)
        want = floyd_warshall(S.astype(float), directed=True)
        assert np.allclose(got, want)

    def test_grid_distances(self):
        G = grid_2d(4, 4, domain=grb.FP64)
        got = apsp(G)
        # manhattan distances between grid points
        for a in range(16):
            for b in range(16):
                ra, ca = divmod(a, 4)
                rb, cb = divmod(b, 4)
                assert got[a, b] == abs(ra - rb) + abs(ca - cb)

    def test_diagonal_is_zero(self):
        G = erdos_renyi(20, 60, seed=45)
        assert (np.diag(apsp(G)) == 0).all()

    def test_unreachable_is_inf(self):
        P = path_graph(3)  # directed: 2 cannot reach 0
        D = apsp(P)
        assert D[2, 0] == np.inf and D[0, 2] == 2.0


class TestEccentricityFamily:
    def test_cycle_metrics(self):
        C = cycle_graph(6)  # directed cycle: ecc = 5 everywhere
        assert (eccentricity(C) == 5).all()
        assert diameter(C) == 5 and radius(C) == 5

    def test_grid_diameter(self):
        G = grid_2d(3, 5, domain=grb.FP64)
        assert diameter(G) == 2 + 4  # opposite corners
        e = eccentricity(G)
        # the most central vertex of a 3x5 grid: middle cell (1,2)
        assert radius(G) == e[1 * 5 + 2]

    def test_disconnected_diameter_inf(self):
        P = path_graph(4)
        assert diameter(P) == np.inf
