"""Robustness of the on-disk kernel cache.

The invariant under attack: a damaged cache may cost a recompile, it must
never cost correctness or a crash.  Corrupt, truncated, stale-versioned,
foreign-schema, uncompilable, and runtime-exploding entries all fall back
to regenerated kernels or the interpreter — and the damaged entry is
repaired (rewritten) or retired (unlinked).  Concurrent writers from
separate processes go through atomic same-directory renames, so readers
can never observe a torn entry.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro as grb
from repro import context, parallel
from repro.kernels import cache as kc
from repro.kernels import codegen as cg
from repro.kernels.chain import CACHE_VERSION

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def kernel_cache(tmp_path, monkeypatch):
    """A fresh cache dir + pristine per-process kernel state."""
    path = tmp_path / "kernels"
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(path))
    cg.clear_kernels()
    kc.clear_memory()
    yield path
    cg.clear_kernels()
    kc.clear_memory()


def _run_chain(backend="codegen"):
    """A deterministic mxm→apply→apply chain; returns C's exact tuples."""
    context._reset()
    parallel.set_kernel_backend(backend)
    grb.init(grb.Mode.NONBLOCKING)
    r = np.random.default_rng(5)
    n = 12
    keys = r.choice(n * n, size=60, replace=False)
    rows, cols = np.divmod(keys, n)
    A = grb.Matrix.from_coo(grb.FP64, n, n, rows, cols, r.uniform(-2, 2, 60))
    C = grb.Matrix(grb.FP64, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
    grb.apply(C, None, None, grb.AINV[grb.FP64], C)
    grb.apply(C, None, None, grb.ABS[grb.FP64], C)
    grb.wait()
    return C.extract_tuples()


def _assert_same(a, b):
    for x, y in zip(a, b):
        assert np.array_equal(x, y) and x.dtype == y.dtype


@pytest.fixture
def expected():
    return _run_chain("interpreter")


def _sole_entry(path: Path) -> Path:
    entries = list(path.glob("*.json"))
    assert len(entries) == 1
    return entries[0]


class TestDamagedEntries:
    def damage_then_rerun(self, path, expected, damage):
        _run_chain()
        entry = _sole_entry(path)
        original = entry.read_text(encoding="utf-8")
        damage(entry)
        cg.clear_kernels()
        kc.clear_memory()
        _assert_same(_run_chain(), expected)
        return entry, original

    def test_corrupt_entry_falls_back_and_is_rewritten(
        self, kernel_cache, expected
    ):
        entry, original = self.damage_then_rerun(
            kernel_cache, expected,
            lambda e: e.write_bytes(b"\x00\xffnot json at all"),
        )
        assert kc.stats()["rejects"] == 1
        # repaired: the rewritten entry is byte-identical generated source
        assert entry.read_text(encoding="utf-8") == original

    def test_truncated_entry_falls_back_and_is_rewritten(
        self, kernel_cache, expected
    ):
        entry, original = self.damage_then_rerun(
            kernel_cache, expected,
            lambda e: e.write_text(
                e.read_text(encoding="utf-8")[:40], encoding="utf-8"
            ),
        )
        assert kc.stats()["rejects"] == 1
        assert entry.read_text(encoding="utf-8") == original

    def test_stale_version_is_ignored_and_rewritten(
        self, kernel_cache, expected
    ):
        def stale(e):
            doc = json.loads(e.read_text(encoding="utf-8"))
            doc["version"] = CACHE_VERSION - 1
            e.write_text(json.dumps(doc), encoding="utf-8")

        entry, original = self.damage_then_rerun(kernel_cache, expected, stale)
        assert kc.stats()["rejects"] == 1
        assert entry.read_text(encoding="utf-8") == original

    def test_foreign_schema_is_ignored(self, kernel_cache, expected):
        def foreign(e):
            doc = json.loads(e.read_text(encoding="utf-8"))
            doc["schema"] = "someone-elses-cache/9"
            e.write_text(json.dumps(doc), encoding="utf-8")

        entry, original = self.damage_then_rerun(
            kernel_cache, expected, foreign
        )
        assert entry.read_text(encoding="utf-8") == original

    def test_wrong_key_is_ignored(self, kernel_cache, expected):
        def miskeyed(e):
            doc = json.loads(e.read_text(encoding="utf-8"))
            doc["key"] = "0" * 32
            e.write_text(json.dumps(doc), encoding="utf-8")

        entry, original = self.damage_then_rerun(
            kernel_cache, expected, miskeyed
        )
        assert entry.read_text(encoding="utf-8") == original

    def test_uncompilable_source_is_regenerated(self, kernel_cache, expected):
        def break_source(e):
            doc = json.loads(e.read_text(encoding="utf-8"))
            doc["source"] = "def fused_chain(:\n"  # syntax error
            e.write_text(json.dumps(doc), encoding="utf-8")

        entry, original = self.damage_then_rerun(
            kernel_cache, expected, break_source
        )
        assert entry.read_text(encoding="utf-8") == original

    def test_runtime_exploding_kernel_is_retired(self, kernel_cache, expected):
        def booby_trap(e):
            doc = json.loads(e.read_text(encoding="utf-8"))
            doc["source"] = (
                "def fused_chain(keys, vals, masks, dims):\n"
                "    raise RuntimeError('boom')\n"
            )
            e.write_text(json.dumps(doc), encoding="utf-8")

        _run_chain()
        entry = _sole_entry(kernel_cache)
        booby_trap(entry)
        cg.clear_kernels()
        kc.clear_memory()
        # the trap compiles fine, detonates at run time: the chain must
        # still complete (interpreter fallback) and the entry must be gone
        _assert_same(_run_chain(), expected)
        assert not entry.exists()
        # and with the bad key retired, the next run stays correct too
        _assert_same(_run_chain(), expected)


class TestConcurrency:
    def test_concurrent_processes_do_not_tear_entries(
        self, kernel_cache, expected
    ):
        script = (
            "import numpy as np\n"
            "import repro as grb\n"
            "from repro import parallel\n"
            "parallel.set_kernel_backend('codegen')\n"
            "grb.init(grb.Mode.NONBLOCKING)\n"
            "r = np.random.default_rng(5)\n"
            "n = 12\n"
            "keys = r.choice(n * n, size=60, replace=False)\n"
            "rows, cols = np.divmod(keys, n)\n"
            "A = grb.Matrix.from_coo(grb.FP64, n, n, rows, cols,"
            " r.uniform(-2, 2, 60))\n"
            "C = grb.Matrix(grb.FP64, n, n)\n"
            "grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)\n"
            "grb.apply(C, None, None, grb.AINV[grb.FP64], C)\n"
            "grb.apply(C, None, None, grb.ABS[grb.FP64], C)\n"
            "grb.wait()\n"
            "rows, cols, vals = C.extract_tuples()\n"
            "print(len(rows), repr(float(vals.sum())))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env["REPRO_KERNEL_CACHE"] = str(kernel_cache)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for _ in range(4)
        ]
        outputs = []
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err.decode()
            outputs.append(out.decode().strip())
        # every process computed the same thing ...
        assert len(set(outputs)) == 1
        rows, cols, vals = expected
        assert outputs[0] == f"{len(rows)} {float(vals.sum())!r}"
        # ... and every surviving entry is whole: valid JSON, right schema,
        # key matching its filename, loadable source
        entries = list(kernel_cache.glob("*.json"))
        assert entries
        for e in entries:
            doc = json.loads(e.read_text(encoding="utf-8"))
            assert doc["schema"] == kc.ENTRY_SCHEMA
            assert doc["version"] == CACHE_VERSION
            assert doc["key"] == e.stem
            assert kc.load_source(e.stem) == doc["source"]
        # no abandoned temp files either
        assert not list(kernel_cache.glob("*.tmp"))
