"""The differential conformance fuzzer: generator validity, differential
execution, shrinking, corpus round-trips, and the mutation check (a
deliberately injected kernel bug must be caught and shrunk to ≤ 4 ops —
see EXPERIMENTS.md)."""

import numpy as np
import pytest

import repro.operations.common as op_common
from repro.fuzz import (
    CANONICAL_OPS,
    Program,
    default_modes,
    exhaustive_modes,
    generate_corpus,
    generate_program,
    load_corpus,
    measure_corpus,
    run_differential,
    run_reference,
    save_corpus,
    shrink,
)
from repro.fuzz.executor import BLOCKING, values_equal
from repro.fuzz.shrink import differential_predicate


class TestGenerator:
    def test_deterministic_replay(self):
        a = generate_program(42, 7)
        b = generate_program(42, 7)
        assert a.to_json() == b.to_json()

    def test_programs_are_well_formed(self):
        for p in generate_corpus(3, 40):
            names = {d.name for d in p.decls}
            assert p.referenced_names() <= names
            assert 1 <= len(p.calls)
            for c in p.calls:
                if c.out is not None:
                    assert c.out in names

    def test_corpus_reaches_every_canonical_op(self):
        cov = measure_corpus(generate_corpus(0, 60))
        assert cov.ops_seen() == set(CANONICAL_OPS)

    def test_corpus_exercises_udt_masks_accums(self):
        progs = list(generate_corpus(0, 60))
        dtypes = {d.dtype for p in progs for d in p.decls}
        assert "PSET" in dtypes
        kinds = {c.mask_kind() for p in progs for c in p.calls}
        assert {"value", "value_comp", "struct", "struct_comp"} <= kinds
        assert any(c.accum for p in progs for c in p.calls)

    def test_aliasing_is_generated(self):
        aliased = 0
        for p in generate_corpus(0, 60):
            for c in p.calls:
                operands = [c.args.get(k) for k in ("a", "b", "u", "mask")]
                if c.out is not None and c.out in operands:
                    aliased += 1
        assert aliased > 0


class TestDifferential:
    def test_small_corpus_conforms(self):
        for p in generate_corpus(7, 25):
            report = run_differential(p)
            assert report is None, f"\n{report}"

    def test_exhaustive_modes_on_a_few(self):
        modes = exhaustive_modes()
        assert len(modes) == 18  # blocking + planner-off + 2^4 combos
        for p in generate_corpus(11, 4):
            assert run_differential(p, modes) is None

    def test_tolerance_is_dtype_aware(self):
        assert values_equal(1.0, 1.0 + 1e-12, "FP64")
        assert not values_equal(1.0, 1.001, "FP64")
        assert values_equal(np.float32(1.0), 1.0 + 1e-6, "FP32")
        assert not values_equal(1, 2, "INT64")
        assert values_equal(float("nan"), float("nan"), "FP64")
        assert values_equal(frozenset((1, 2)), frozenset((1, 2)), "PSET")


class TestCorpusRoundTrip:
    def test_json_round_trip(self):
        p = generate_program(5, 0)
        assert Program.from_json(p.to_json()).to_json() == p.to_json()

    def test_save_load(self, tmp_path):
        progs = list(generate_corpus(5, 6))
        path = tmp_path / "corpus.jsonl"
        save_corpus(progs, path)
        loaded = load_corpus(path)
        assert [q.to_json() for q in loaded] == [p.to_json() for p in progs]
        # loaded programs replay identically on the oracle
        ref_a = run_reference(progs[0])
        ref_b = run_reference(loaded[0])
        assert ref_a.objects.keys() == ref_b.objects.keys()


class TestShrinker:
    def test_shrinks_to_single_witness_call(self):
        # synthetic predicate: "program still contains a kronecker"
        victim = None
        for p in generate_corpus(0, 30):
            if sum(c.kind == "kronecker" for c in p.calls) and len(p.calls) > 3:
                victim = p
                break
        assert victim is not None
        small = shrink(
            victim, lambda q: any(c.kind == "kronecker" for c in q.calls)
        )
        assert len(small.calls) == 1 and small.calls[0].kind == "kronecker"
        # unused declarations were pruned along the way
        assert {d.name for d in small.decls} == small.referenced_names()

    def test_rejects_input_that_does_not_fail(self):
        with pytest.raises(ValueError):
            shrink(generate_program(0, 0), lambda q: False)


class TestMutationCheck:
    """EXPERIMENTS.md mutation check: inject a masked-write bug (REPLACE
    treated as merge), assert the fuzzer catches it and the shrinker
    reduces the witness to ≤ 4 ops."""

    def test_replace_as_merge_is_caught_and_shrunk(self, monkeypatch):
        real = op_common.masked_write

        def buggy(C, z_keys, z_vals, mask_view, replace):
            real(C, z_keys, z_vals, mask_view, False)  # bug: REPLACE ignored

        monkeypatch.setattr(op_common, "masked_write", buggy)
        victim = None
        for p in generate_corpus(1234, 60):
            report = run_differential(p, [BLOCKING])
            if report is not None:
                victim = report
                break
        assert victim is not None, "injected bug was not caught in 60 programs"
        small = shrink(
            victim.program, differential_predicate(victim, [BLOCKING])
        )
        assert len(small.calls) <= 4
        # with the real kernel restored, the witness conforms again
        monkeypatch.setattr(op_common, "masked_write", real)
        assert run_differential(small, default_modes()) is None
