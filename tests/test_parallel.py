"""Thread-parallel kernels: identical results, balanced partitioning."""

import numpy as np
import pytest

import repro as grb
from repro import parallel
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.parallel.config import row_blocks

from tests.conftest import random_matrix


@pytest.fixture(autouse=True)
def restore_parallel_config():
    yield
    parallel.set_num_threads(1)
    parallel.set_parallel_threshold(200_000)


class TestConfig:
    def test_default_single_thread(self):
        assert parallel.get_num_threads() == 1

    def test_set_threads_validates(self):
        with pytest.raises(grb.InvalidValue):
            parallel.set_num_threads(0)

    def test_threshold_validates(self):
        with pytest.raises(grb.InvalidValue):
            parallel.set_parallel_threshold(-1)

    def test_threads_capped_at_cpu_count(self):
        import os

        parallel.set_num_threads(10_000)
        assert parallel.get_num_threads() <= (os.cpu_count() or 1)


class TestRowBlocks:
    def test_covers_all_rows_contiguously(self):
        work = np.array([5, 1, 1, 1, 10, 1, 1, 1])
        blocks = row_blocks(work, 3)
        covered = []
        for b in blocks:
            covered.extend(range(b.start, b.stop))
        assert covered == list(range(8))

    def test_single_block_for_one_thread(self):
        assert row_blocks(np.ones(10, dtype=np.int64), 1) == [slice(0, 10)]

    def test_empty_work(self):
        assert row_blocks(np.empty(0, dtype=np.int64), 4) == [slice(0, 0)]

    def test_zero_work(self):
        assert row_blocks(np.zeros(5, dtype=np.int64), 4) == [slice(0, 5)]

    def test_balanced_split(self):
        work = np.ones(100, dtype=np.int64)
        blocks = row_blocks(work, 4)
        sizes = [b.stop - b.start for b in blocks]
        assert len(blocks) == 4
        assert max(sizes) - min(sizes) <= 1


class TestParallelSpGEMM:
    def test_parallel_equals_serial(self, rng):
        A = erdos_renyi(300, 6000, seed=17, domain=grb.INT64)
        B = erdos_renyi(300, 6000, seed=18, domain=grb.INT64)
        s = predefined.PLUS_TIMES[grb.INT64]

        C_serial = grb.Matrix(grb.INT64, 300, 300)
        grb.mxm(C_serial, None, None, s, A, B)

        parallel.set_num_threads(4)
        parallel.set_parallel_threshold(1)
        C_par = grb.Matrix(grb.INT64, 300, 300)
        grb.mxm(C_par, None, None, s, A, B)

        i1, j1, v1 = C_serial.extract_tuples()
        i2, j2, v2 = C_par.extract_tuples()
        assert i1.tolist() == i2.tolist()
        assert j1.tolist() == j2.tolist()
        assert v1.tolist() == v2.tolist()

    def test_parallel_with_mask_equals_serial(self, rng):
        A = erdos_renyi(200, 4000, seed=19, domain=grb.INT64)
        M = erdos_renyi(200, 2000, seed=20, domain=grb.BOOL)
        s = predefined.PLUS_TIMES[grb.INT64]

        C1 = grb.Matrix(grb.INT64, 200, 200)
        grb.mxm(C1, M, None, s, A, A, grb.DESC_R)

        parallel.set_num_threads(4)
        parallel.set_parallel_threshold(1)
        C2 = grb.Matrix(grb.INT64, 200, 200)
        grb.mxm(C2, M, None, s, A, A, grb.DESC_R)

        assert {(i, j): int(v) for i, j, v in C1} == {
            (i, j): int(v) for i, j, v in C2
        }

    def test_below_threshold_stays_serial(self, rng):
        # tiny product with a huge threshold: must not crash or differ
        parallel.set_num_threads(4)
        parallel.set_parallel_threshold(10**9)
        A = random_matrix(rng, 10, 10, 0.5)
        C = grb.Matrix(grb.INT64, 10, 10)
        grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, A)
        assert (C.to_dense(0) == A.to_dense(0) @ A.to_dense(0)).all()
