"""Observability subsystem: spans, metrics, exporters, and the leak fix.

Covers the obs core (arming discipline, span nesting, counter deltas),
the Chrome trace-event exporter's structural contract, the per-label
report's fusion/CSE provenance lines, the BenchRecorder schema, and —
the acceptance scenario — the paper's betweenness-centrality example
running under ``obs.capture()`` end to end.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro as grb
from repro import context, obs
from repro.execution.trace import trace
from repro.info import InvalidValue

from tests.conftest import random_matrix


# --------------------------------------------------------------------------
# Arming discipline and the zero-cost disabled path
# --------------------------------------------------------------------------

class TestArming:
    def test_disarmed_by_default(self):
        assert obs.spans.current() is None
        assert not obs.metrics.registry.enabled
        assert not obs.active()

    def test_capture_arms_and_disarms(self):
        with obs.capture() as cap:
            assert obs.spans.current() is cap._sink
            assert obs.metrics.registry.enabled
            assert obs.active()
        assert obs.spans.current() is None
        assert not obs.metrics.registry.enabled

    def test_nested_capture_rejected(self):
        with obs.capture():
            with pytest.raises(InvalidValue):
                with obs.capture():
                    pass
        # the rejected inner capture must not have disarmed the outer state
        assert obs.spans.current() is None

    def test_disarm_restores_preenabled_metrics(self):
        obs.metrics.registry.enable()
        try:
            with obs.capture():
                pass
            assert obs.metrics.registry.enabled  # production profile preserved
        finally:
            obs.metrics.registry.disable()

    def test_wrap_thunk_identity_when_disarmed(self):
        from repro.execution.trace import wrap_thunk

        thunk = lambda: None
        assert wrap_thunk(thunk, "x", deferred=False) is thunk

    def test_exception_inside_capture_still_disarms(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert obs.spans.current() is None
        assert not obs.metrics.registry.enabled


class TestTraceLeakRegression:
    """Satellite: ``trace.__enter__`` must not leak its armed state.

    The pre-obs tracer set the global tracer *before* reading
    ``context.queue_stats()``; a raise there left the global armed and
    every later ``trace()`` died with InvalidValue forever.
    """

    def test_enter_failure_disarms(self, monkeypatch):
        def explode():
            raise RuntimeError("stats backend unavailable")

        monkeypatch.setattr(context, "queue_stats", explode)
        with pytest.raises(RuntimeError, match="stats backend"):
            with trace():
                pass
        monkeypatch.undo()

        # the regression: this second trace() raised InvalidValue
        with trace() as t:
            pass
        assert t.count() == 0
        assert obs.spans.current() is None

    def test_enter_failure_restores_metrics_flag(self, monkeypatch):
        monkeypatch.setattr(
            context, "queue_stats",
            lambda: (_ for _ in ()).throw(RuntimeError("nope")),
        )
        with pytest.raises(RuntimeError):
            with obs.capture():
                pass
        assert not obs.metrics.registry.enabled


# --------------------------------------------------------------------------
# Span collection: nesting, kinds, attrs
# --------------------------------------------------------------------------

class TestSpans:
    def test_kernel_span_nests_under_op_span(self, rng):
        A = random_matrix(rng, 12, 12, 0.4)
        C = grb.Matrix(grb.INT64, 12, 12)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        ops = cap.spans_of("op")
        kernels = cap.spans_of("kernel")
        assert [sp.label for sp in ops] == ["mxm"]
        assert [sp.label for sp in kernels] == ["spgemm"]
        assert kernels[0].parent == ops[0].sid
        assert ops[0].parent is None
        assert not ops[0].deferred  # blocking mode runs eagerly

    def test_kernel_span_flops_and_nnz(self, rng):
        A = random_matrix(rng, 16, 16, 0.4)
        C = grb.Matrix(grb.INT64, 16, 16)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        (k,) = cap.spans_of("kernel")
        assert k.attrs["flops_estimated"] > 0
        assert 0 < k.attrs["flops_realized"] <= k.attrs["flops_estimated"]
        assert k.attrs["nnz_out"] == C.nvals()
        assert k.seconds > 0

    def test_op_span_carries_nnz_in_out(self, rng):
        A = random_matrix(rng, 10, 10, 0.5)
        C = grb.Matrix(grb.INT64, 10, 10)
        with obs.capture() as cap:
            grb.apply(C, None, None, grb.AINV[grb.INT64], A)
        (op,) = cap.spans_of("op")
        assert op.attrs["nnz_in"] == A.nvals()
        assert op.attrs["nnz_out"] == C.nvals()

    def test_drain_span_in_nonblocking_mode(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 10, 10, 0.4)
        C = grb.Matrix(grb.INT64, 10, 10)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.wait()
        drains = cap.spans_of("drain")
        assert len(drains) == 1
        assert drains[0].attrs["ops"] >= 1
        (op,) = [sp for sp in cap.spans_of("op") if sp.label == "mxm"]
        assert op.deferred

    def test_user_region_span(self):
        with obs.capture() as cap:
            with obs.spans.span("my-phase", "region", iteration=3):
                pass
        (r,) = cap.spans_of("region")
        assert r.label == "my-phase" and r.attrs["iteration"] == 3

    def test_annotate_outside_span_is_noop(self):
        obs.annotate(x=1)  # disarmed: must not raise
        with obs.capture():
            obs.annotate(x=1)  # armed but no open span: still a no-op


# --------------------------------------------------------------------------
# Metrics registry
# --------------------------------------------------------------------------

class TestMetrics:
    def test_disabled_registry_ignores_emits(self):
        obs.metrics.registry.inc("x")
        obs.metrics.registry.observe("h", 5)
        snap = obs.metrics.registry.snapshot()
        assert "x" not in snap["counters"] and "h" not in snap["histograms"]

    def test_counter_deltas_over_window(self, rng):
        A = random_matrix(rng, 12, 12, 0.4)
        C = grb.Matrix(grb.INT64, 12, 12)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        c = cap.counters
        assert c["kernel.invocations"] == 1
        assert c["kernel.flops_realized"] > 0
        assert c["op.writes"] >= 1
        assert c["op.nnz_out"] >= C.nvals()

    def test_histogram_buckets(self):
        h = obs.metrics.Histogram()
        for v in (1, 3, 17, 300):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["min"] == 1 and d["max"] == 300
        assert d["total"] == 321
        assert sum(d["buckets"]) == 4

    def test_delta_is_pure(self):
        before = {"counters": {"a": 2}, "histograms": {}}
        after = {"counters": {"a": 5, "b": 1}, "histograms": {}}
        d = obs.MetricsRegistry.delta(before, after)
        assert d["counters"] == {"a": 3, "b": 1}


# --------------------------------------------------------------------------
# Chrome trace exporter: structural contract
# --------------------------------------------------------------------------

def _validate_chrome_trace(doc: dict) -> list[dict]:
    """Assert the Trace Event Format contract; return the X events."""
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["displayTimeUnit"] in ("ms", "ns")
    xs, metas = [], []
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "M")
        (xs if ev["ph"] == "X" else metas).append(ev)
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
    tids = {ev["tid"] for ev in xs}
    named = {ev["tid"] for ev in metas if ev.get("name") == "thread_name"}
    assert tids <= named, "every tid must carry thread_name metadata"
    for ev in xs:
        assert isinstance(ev["name"], str) and ev["name"]
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert "span_id" in ev["args"]
    return xs


class TestChromeExport:
    def test_structure_and_roundtrip(self, rng, tmp_path):
        A = random_matrix(rng, 12, 12, 0.4)
        C = grb.Matrix(grb.INT64, 12, 12)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        path = tmp_path / "trace.json"
        cap.export_chrome(path)
        doc = json.loads(path.read_text())  # must be valid JSON on disk
        xs = _validate_chrome_trace(doc)
        assert {ev["name"] for ev in xs} >= {"mxm", "spgemm"}

    def test_numpy_attrs_serialize(self):
        sink = obs.SpanSink()
        sp = sink.open("k", "kernel", nnz=np.int64(7), ratio=np.float64(0.5))
        sink.close(sp)
        doc = obs.chrome_trace(sink.spans)
        json.dumps(doc)  # numpy scalars must have been coerced
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["nnz"] == 7

    def test_timestamps_relative_and_ordered(self, rng):
        A = random_matrix(rng, 10, 10, 0.4)
        C = grb.Matrix(grb.INT64, 10, 10)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.apply(C, None, None, grb.AINV[grb.INT64], C)
        xs = [e for e in cap.chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0  # rebased to the window start


# --------------------------------------------------------------------------
# Per-label report: provenance rendering
# --------------------------------------------------------------------------

class TestReport:
    def test_fusion_provenance_line(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        A = random_matrix(rng, 8, 8, 0.4)
        C = grb.Matrix(grb.INT64, 8, 8)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
            grb.apply(C, None, None, grb.AINV[grb.INT64], C)
            grb.wait()
        report = cap.report()
        assert "mxm+apply[fused]" in report
        assert "fusion: mxm" in report and "apply" in report
        assert cap.queue_delta()["fused"] == 1

    def test_cse_provenance_line(self, rng):
        grb.init(grb.Mode.NONBLOCKING)
        s = grb.PLUS_TIMES[grb.INT64]
        A = random_matrix(rng, 8, 8, 0.4)
        C1 = grb.Matrix(grb.INT64, 8, 8)
        C2 = grb.Matrix(grb.INT64, 8, 8)
        with obs.capture() as cap:
            grb.mxm(C1, None, None, s, A, A)
            grb.mxm(C2, None, None, s, A, A)
            grb.wait()
        report = cap.report()
        assert "mxm[cse]" in report and "cse:" in report
        assert cap.counters.get("op.cse_reuses", 0) == 1

    def test_report_has_counter_tail_and_flops(self, rng):
        A = random_matrix(rng, 12, 12, 0.4)
        C = grb.Matrix(grb.INT64, 12, 12)
        with obs.capture() as cap:
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, A)
        report = cap.report()
        assert "spgemm" in report and "kernel" in report
        assert "kernel.flops_realized" in report
        assert "flops est/real" in report


# --------------------------------------------------------------------------
# Bench recorder
# --------------------------------------------------------------------------

class TestBenchRecorder:
    def test_schema_and_stats(self, tmp_path):
        rec = obs.BenchRecorder(meta={"suite": "unit"})
        rec.record("w1", [0.2, 0.1, 0.3], nnz=42)
        path = tmp_path / "bench.json"
        rec.write(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench/1"
        (e,) = doc["benchmarks"]
        assert e["name"] == "w1" and e["runs"] == 3
        assert e["min_s"] == pytest.approx(0.1)
        assert e["median_s"] == pytest.approx(0.2)
        assert e["max_s"] == pytest.approx(0.3)
        assert e["nnz"] == 42
        assert "python" in doc["env"]

    def test_measure_runs_and_records(self):
        calls = []
        rec = obs.BenchRecorder()
        rec.measure("m", lambda: calls.append(1), repeat=3, warmup=1)
        assert len(calls) == 4  # 1 warmup + 3 measured
        (e,) = rec.entries
        assert e["runs"] == 3 and e["min_s"] >= 0

    def test_empty_write_refused(self, tmp_path):
        rec = obs.BenchRecorder()
        with pytest.raises(ValueError):
            rec.write(tmp_path / "empty.json")

    def test_empty_record_refused(self):
        with pytest.raises(ValueError):
            obs.BenchRecorder().record("w", [])


# --------------------------------------------------------------------------
# Acceptance: the paper's BC example under capture
# --------------------------------------------------------------------------

class TestBetweennessAcceptance:
    def _run_bc(self):
        from repro.algorithms import bc_update
        from repro.io import rmat

        A = rmat(6, 8, seed=7, domain=grb.INT32)
        with obs.capture() as cap:
            delta = bc_update(A, np.arange(4))
        return cap, delta

    def test_chrome_trace_validates(self, tmp_path):
        cap, _ = self._run_bc()
        path = tmp_path / "bc_trace.json"
        cap.export_chrome(path)
        xs = _validate_chrome_trace(json.loads(path.read_text()))
        names = {ev["name"] for ev in xs}
        assert "mxm" in names and "spgemm" in names

    def test_report_and_counters(self):
        cap, delta = self._run_bc()
        report = cap.report()
        assert "spgemm" in report and "mxm" in report
        c = cap.counters
        assert c["kernel.invocations"] >= 1
        assert c["kernel.flops_realized"] > 0
        assert delta.nvals() >= 0  # result object survived the capture

    def test_nonblocking_bc_matches_blocking(self):
        from repro.algorithms import bc_update
        from repro.io import rmat

        A = rmat(6, 8, seed=7, domain=grb.INT32)
        blocking = bc_update(A, np.arange(4)).extract_tuples()

        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        A2 = rmat(6, 8, seed=7, domain=grb.INT32)
        with obs.capture() as cap:
            delta = bc_update(A2, np.arange(4))
            grb.wait()
        nb = delta.extract_tuples()
        for g, w in zip(nb, blocking):
            assert np.array_equal(g, w)
        assert cap.spans_of("drain")  # the planner actually ran under obs
