"""Edge-list text I/O."""

import io

import numpy as np
import pytest

import repro as grb
from repro.io import read_edgelist, write_edgelist

from tests.conftest import random_matrix


class TestRead:
    def test_unweighted(self):
        A = read_edgelist(io.StringIO("0 1\n1 2\n# comment\n2 0\n"))
        assert A.type is grb.BOOL
        assert {(i, j) for i, j, _ in A} == {(0, 1), (1, 2), (2, 0)}

    def test_weighted(self):
        A = read_edgelist(io.StringIO("0 1 2.5\n1 0 0.5\n"))
        assert A.type is grb.FP64
        assert A.extract_element(0, 1) == 2.5

    def test_size_from_max_vertex(self):
        A = read_edgelist(io.StringIO("0 7\n"))
        assert A.shape == (8, 8)

    def test_explicit_size(self):
        A = read_edgelist(io.StringIO("0 1\n"), n=100)
        assert A.shape == (100, 100)

    def test_percent_comments_and_blanks(self):
        A = read_edgelist(io.StringIO("% header\n\n0 1\n"))
        assert A.nvals() == 1

    def test_duplicate_weighted_edges_summed(self):
        A = read_edgelist(io.StringIO("0 1 1.0\n0 1 2.0\n"))
        assert A.extract_element(0, 1) == 3.0

    def test_duplicate_unweighted_edges_collapse(self):
        A = read_edgelist(io.StringIO("0 1\n0 1\n"))
        assert A.nvals() == 1

    def test_mixed_rows_rejected(self):
        with pytest.raises(grb.InvalidValue):
            read_edgelist(io.StringIO("0 1\n1 2 3.0\n"))

    def test_bad_column_count(self):
        with pytest.raises(grb.InvalidValue):
            read_edgelist(io.StringIO("0 1 2 3\n"))

    def test_negative_vertex(self):
        with pytest.raises(grb.InvalidValue):
            read_edgelist(io.StringIO("-1 2\n"))

    def test_empty_needs_size(self):
        with pytest.raises(grb.InvalidValue):
            read_edgelist(io.StringIO("# nothing\n"))
        A = read_edgelist(io.StringIO(""), n=4)
        assert A.shape == (4, 4) and A.nvals() == 0

    def test_domain_override(self):
        A = read_edgelist(io.StringIO("0 1 3.7\n"), domain=grb.INT32)
        assert A.extract_element(0, 1) == 3


class TestRoundTrip:
    def test_weighted_round_trip(self, rng, tmp_path):
        A = random_matrix(rng, 10, 10, 0.3, domain=grb.FP64)
        p = tmp_path / "g.txt"
        write_edgelist(p, A)
        B = read_edgelist(p)
        assert B.shape[0] >= max(
            (max(i, j) for i, j, _ in A), default=0
        )
        got = {(i, j): float(v) for i, j, v in B}
        want = {(i, j): float(v) for i, j, v in A}
        assert got == want

    def test_pattern_round_trip(self, tmp_path):
        A = grb.Matrix.from_coo(
            grb.BOOL, 5, 5, [0, 4], [4, 0], [True, True]
        )
        p = tmp_path / "p.txt"
        write_edgelist(p, A)
        B = read_edgelist(p, n=5)
        assert {(i, j) for i, j, _ in A} == {(i, j) for i, j, _ in B}

    def test_stringio_target(self, rng):
        A = random_matrix(rng, 6, 6, 0.4)
        buf = io.StringIO()
        write_edgelist(buf, A)
        B = read_edgelist(io.StringIO(buf.getvalue()), n=6, domain=grb.INT64)
        assert {(i, j): int(v) for i, j, v in A} == {
            (i, j): int(v) for i, j, v in B
        }
