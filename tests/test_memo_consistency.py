"""Cache-consistency battery: the cross-request result cache must be
semantically invisible.

Each seed builds one deterministic interleaved schedule — zipf-skewed
reads from several tenant sessions plus streaming writes into the shared
graph — and runs it twice, cache on and cache off.  The schedules are
issued synchronously (one request at a time), so both runs see the same
version history and every response pair must be bitwise identical: any
stale entry, wrong invalidation, or materialization bug shows up as a
diff.  The write→immediately-read edge is forced explicitly after every
shared mutation.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.service import (
    SHARED_PREFIX,
    SHARED_SESSION,
    Service,
    ServiceConfig,
    ServiceError,
)
from repro.service.loadgen import (
    _op_update,
    _shared_read_pool,
    shared_graph_payload,
)

_SHARED_N = 32
_SESSIONS = 3
_OPS = 28


def _schedule(seed: int) -> list[tuple[str, str, dict]]:
    """A deterministic interleaved (session, kind, payload) schedule."""
    rng = random.Random(seed * 9176 + 5)
    pool = _shared_read_pool(seed, 10)
    ops: list[tuple[str, str, dict]] = []
    for _ in range(_OPS):
        r = rng.random()
        sess = f"s{rng.randrange(_SESSIONS)}"
        if r < 0.22:
            kind, payload = _op_update(rng, "G", _SHARED_N)
            ops.append((SHARED_SESSION, kind, payload))
            # the write -> immediately-read edge: the very next request
            # reads the shared graph and must see the new version, never
            # a stale cache entry keyed on the old one
            kind, payload = pool[rng.randrange(len(pool))]
            ops.append((sess, kind, payload))
        else:
            kind, payload = pool[rng.randrange(len(pool))]
            ops.append((sess, kind, payload))
    return ops


def _run(seed: int, ops, *, cache: bool) -> tuple[list, dict]:
    svc = Service(ServiceConfig(workers=2, cache=cache))
    try:
        for i in range(_SESSIONS):
            svc.open_session(f"s{i}")
        svc.request(SHARED_SESSION, "define", shared_graph_payload(seed))
        out = []
        for sess, kind, payload in ops:
            try:
                out.append(svc.request(sess, kind, payload))
            except ServiceError as exc:
                out.append({"__error__": type(exc).__name__})
        return out, svc.stats()
    finally:
        svc.shutdown()


@pytest.mark.parametrize("seed", range(20))
def test_cache_on_off_bitwise_identical(seed):
    ops = _schedule(seed)
    hot, hot_stats = _run(seed, ops, cache=True)
    cold, cold_stats = _run(seed, ops, cache=False)

    assert cold_stats["cache"] is None
    assert len(hot) == len(cold) == len(ops)
    for i, (a, b) in enumerate(zip(hot, cold)):
        # bitwise: compare the canonical wire encodings, not just ==
        ja = json.dumps(a, sort_keys=True, default=str)
        jb = json.dumps(b, sort_keys=True, default=str)
        assert ja == jb, (
            f"seed {seed} op {i} {ops[i][1]} diverged with cache on:\n"
            f"  cached:   {ja}\n  uncached: {jb}"
        )


def test_battery_exercises_the_cache():
    # the parametrized battery is only meaningful if the cached runs
    # actually hit and actually invalidate; assert that on one seed
    ops = _schedule(0)
    _, stats = _run(0, ops, cache=True)
    cache = stats["cache"]
    assert cache["hits"] > 0
    assert cache["misses"] > 0
    assert cache["invalidations"] > 0
    assert stats["snapshots"]["published"] > 1


def test_write_then_immediately_read_is_not_served_stale():
    g = SHARED_PREFIX + "G"
    probe = ("query", {"name": g, "what": "nvals"})
    with Service(ServiceConfig(workers=2, cache=True)) as svc:
        svc.open_session("t0")
        svc.open_session("t1")
        svc.request(SHARED_SESSION, "define", {
            "name": "G", "kind": "matrix", "dtype": "FP64",
            "shape": [4, 4], "entries": [[0, 1, 1.0]],
        })
        first = svc.request("t0", *probe, timing=True)
        again = svc.request("t1", *probe, timing=True)
        assert first["nvals"] == 1
        assert first["timing"]["cache"] == "miss"
        assert again["timing"]["cache"] == "hit"

        svc.request(SHARED_SESSION, "update",
                    {"graph": "G", "set": [[2, 3, 5.0]], "remove": []})
        after = svc.request("t0", *probe, timing=True)
        assert after["nvals"] == 2          # must observe the write
        assert after["timing"]["cache"] == "miss"   # old entry invalidated
        assert after["timing"]["shared_version"] > first["timing"][
            "shared_version"]
