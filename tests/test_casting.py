"""Implicit domain conversions: C-style casts between built-in domains, and
the absence of any implicit UDT conversion."""

import numpy as np
import pytest

import repro as grb
from repro.types import can_cast, cast_array, cast_scalar, type_new


class TestCanCast:
    def test_builtin_to_builtin_always_allowed(self):
        assert can_cast(grb.FP64, grb.INT8)
        assert can_cast(grb.BOOL, grb.FP32)
        assert can_cast(grb.UINT64, grb.INT8)

    def test_udt_to_itself(self):
        T = type_new("T", frozenset)
        assert can_cast(T, T)

    def test_udt_to_builtin_forbidden(self):
        T = type_new("T", frozenset)
        assert not can_cast(T, grb.INT32)
        assert not can_cast(grb.INT32, T)

    def test_distinct_udts_forbidden(self):
        T1, T2 = type_new("A", frozenset), type_new("B", frozenset)
        assert not can_cast(T1, T2)


class TestCastArray:
    def test_noop_returns_same_object(self):
        a = np.array([1, 2], dtype=np.int32)
        assert cast_array(a, grb.INT32, grb.INT32) is a

    def test_int_to_bool_c_semantics(self):
        a = np.array([0, 1, -3, 200], dtype=np.int64)
        out = cast_array(a, grb.INT64, grb.BOOL)
        assert out.tolist() == [False, True, True, True]

    def test_float_to_int_truncates_toward_zero(self):
        a = np.array([1.9, -1.9, 0.5, -0.5])
        out = cast_array(a, grb.FP64, grb.INT32)
        assert out.tolist() == [1, -1, 0, 0]

    def test_float_nonfinite_to_int_is_zero(self):
        a = np.array([np.inf, -np.inf, np.nan, 2.5])
        out = cast_array(a, grb.FP64, grb.INT32)
        assert out.tolist() == [0, 0, 0, 2]

    def test_narrowing_wraps_like_c(self):
        a = np.array([300, -200], dtype=np.int64)
        out = cast_array(a, grb.INT64, grb.INT8)
        assert out.tolist() == [44, 56]  # 300 mod 256 = 44; -200 mod 256 = 56

    def test_bool_to_int(self):
        a = np.array([True, False])
        out = cast_array(a, grb.BOOL, grb.INT32)
        assert out.tolist() == [1, 0]

    def test_udt_mismatch_raises(self):
        T = type_new("T", frozenset)
        with pytest.raises(grb.DomainMismatch):
            cast_array(np.array([1]), T, grb.INT32)


class TestCastScalar:
    def test_scalar_wrap(self):
        assert cast_scalar(300, grb.INT64, grb.INT8) == np.int8(44)

    def test_scalar_bool(self):
        assert cast_scalar(-2, grb.INT32, grb.BOOL) == True  # noqa: E712
        assert cast_scalar(0.0, grb.FP64, grb.BOOL) == False  # noqa: E712

    def test_scalar_nonfinite_float_to_int(self):
        assert cast_scalar(np.inf, grb.FP64, grb.INT16) == 0

    def test_scalar_float_precision(self):
        assert cast_scalar(0.5, grb.FP64, grb.FP32) == np.float32(0.5)

    def test_same_domain_identity(self):
        v = np.float64(1.25)
        assert cast_scalar(v, grb.FP64, grb.FP64) is v
