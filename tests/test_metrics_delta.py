"""MetricsRegistry delta semantics: bucket-wise histogram deltas under
concurrent writers, and percentile estimates pinned at the power-of-4
bucket boundaries."""

import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestHistogramDelta:
    def test_delta_is_bucket_wise(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.observe("h", 3)      # bucket le=4
        before = reg.snapshot()
        reg.observe("h", 3)      # le=4 again
        reg.observe("h", 100)    # le=256
        reg.observe("h", 10**9)  # le=1073741824 (the last closed bucket)
        after = reg.snapshot()
        d = MetricsRegistry.delta(before, after)["histograms"]["h"]
        assert d["count"] == 3
        assert d["total"] == pytest.approx(3 + 100 + 10**9)
        buckets = d["buckets"]
        assert buckets[BUCKET_BOUNDS.index(4)] == 1
        assert buckets[BUCKET_BOUNDS.index(256)] == 1
        assert buckets[BUCKET_BOUNDS.index(4**15)] == 1
        assert sum(buckets) == 3

    def test_delta_of_new_histogram_is_its_snapshot(self):
        reg = MetricsRegistry()
        reg.enable()
        before = reg.snapshot()
        reg.observe("fresh", 17)
        d = MetricsRegistry.delta(before, reg.snapshot())["histograms"]
        assert d["fresh"]["count"] == 1
        assert d["fresh"]["buckets"][BUCKET_BOUNDS.index(64)] == 1

    def test_unchanged_histogram_absent_from_delta(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.observe("quiet", 5)
        snap = reg.snapshot()
        assert MetricsRegistry.delta(snap, snap)["histograms"] == {}

    def test_delta_under_concurrent_writers(self):
        """Writers race the window edges; the windowed delta must still be
        exactly the observations made between the two snapshots, bucket by
        bucket."""
        reg = MetricsRegistry()
        reg.enable()
        WRITERS, PER_WRITER = 8, 500
        # values chosen to land in distinct buckets deterministically
        values = [2, 40, 1000, 100_000]
        start = threading.Barrier(WRITERS + 1)

        def writer(wi: int) -> None:
            start.wait()
            for k in range(PER_WRITER):
                reg.observe("lat", values[(wi + k) % len(values)])

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(WRITERS)
        ]
        for t in threads:
            t.start()
        before = reg.snapshot()
        start.wait()  # release the writers only after the 'before' edge
        for t in threads:
            t.join()
        after = reg.snapshot()

        d = MetricsRegistry.delta(before, after)["histograms"]["lat"]
        total_obs = WRITERS * PER_WRITER
        assert d["count"] == total_obs
        assert sum(d["buckets"]) == total_obs
        # every writer hits each value PER_WRITER/len(values) times
        per_bucket = total_obs // len(values)
        for v in values:
            bi = next(i for i, b in enumerate(BUCKET_BOUNDS) if v <= b)
            assert d["buckets"][bi] == per_bucket
        assert d["total"] == pytest.approx(per_bucket * sum(values))

    def test_counter_delta_under_concurrent_writers(self):
        reg = MetricsRegistry()
        reg.enable()
        before = reg.snapshot()
        N = 1000

        def bump():
            for _ in range(N):
                reg.inc("c")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        d = MetricsRegistry.delta(before, reg.snapshot())["counters"]
        assert d["c"] == 4 * N


class TestPercentileAtBucketBoundaries:
    """percentile() resolves to bucket *upper bounds* (clamped by observed
    min/max) — pin that contract at the power-of-4 edges."""

    def _hist_with(self, values):
        h = Histogram()
        for v in values:
            h.observe(v)
        return h.to_dict()

    @pytest.mark.parametrize("bound", [4, 16, 64, 256, 1024, 4**15])
    def test_exact_boundary_value_reports_its_bucket(self, bound):
        # a value sitting exactly on a boundary belongs to that bucket
        # (buckets are <= bound), so the percentile is the value itself
        d = self._hist_with([bound])
        assert percentile(d, 0.99) == float(bound)

    @pytest.mark.parametrize("bound", [4, 16, 64, 256])
    def test_one_past_boundary_rolls_to_next_bucket(self, bound):
        d = self._hist_with([bound + 1])
        # estimate = next bucket's bound, clamped to the observed max
        assert percentile(d, 0.99) == float(bound + 1)

    def test_p50_and_p99_split_across_buckets(self):
        # 99 tiny observations and one huge one: p50 stays in the small
        # bucket, p99 must not (the boundary case CI dashboards read)
        d = self._hist_with([3] * 99 + [5000])
        assert percentile(d, 0.50) == 4.0
        assert percentile(d, 0.99) == 4.0
        assert percentile(d, 0.999) == 5000.0

    def test_overflow_bucket_uses_observed_max(self):
        huge = 4**15 + 12345
        d = self._hist_with([huge])
        assert percentile(d, 0.99) == float(huge)

    def test_empty_histogram_is_none(self):
        assert percentile(Histogram().to_dict(), 0.99) is None

    def test_windowed_delta_percentile(self):
        """percentile() over a delta window (the stats() path): only the
        window's observations move the estimate."""
        reg = MetricsRegistry()
        reg.enable()
        for _ in range(100):
            reg.observe("lat", 3)          # history: all tiny
        before = reg.snapshot()
        for _ in range(10):
            reg.observe("lat", 900)        # window: all in le=1024
        d = MetricsRegistry.delta(before, reg.snapshot())["histograms"]["lat"]
        # bucket bound 1024, clamped to the observed max of 900
        assert percentile(d, 0.99) == 900.0
