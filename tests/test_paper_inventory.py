"""One test per paper artifact: every table and figure of the paper has a
working counterpart in this library (the per-experiment index of DESIGN.md).
"""

import inspect

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops.binary import BINARY_REGISTRY
from repro.ops.unary import UNARY_REGISTRY


class TestTableI:
    """Common semirings used with graph algorithms."""

    def test_all_five_rows_constructible(self):
        rows = predefined.TABLE1_SEMIRINGS
        assert [r[0] for r in rows] == [
            "standard arithmetic",
            "max-plus algebra",
            "min-max algebra",
            "Galois field GF(2)",
            "power set algebra",
        ]
        for _, factory, _, _ in rows:
            s = factory()
            # each row's 0 is the ⊕ identity and the ⊗ annihilator
            zero = s.zero
            if isinstance(zero, frozenset):
                probe = frozenset({1, 2})
            elif s.d_out.is_bool:
                probe = True
            else:
                probe = s.d_out.np_dtype.type(3)
            assert s.add(zero, probe) == probe
            assert s.mul(zero, probe) == zero


class TestTableII:
    """The fundamental operations, all present with the paper's shape."""

    @pytest.mark.parametrize(
        "fn,nargs",
        [
            (grb.mxm, 6),
            (grb.mxv, 6),
            (grb.vxm, 6),
            (grb.ewise_mult, 6),
            (grb.ewise_add, 6),
            (grb.reduce_to_vector, 5),
            (grb.apply, 5),
            (grb.transpose, 4),
            (grb.extract, None),
            (grb.assign, None),
        ],
    )
    def test_operation_exists(self, fn, nargs):
        assert callable(fn)
        if nargs is not None:
            params = [
                p
                for p in inspect.signature(fn).parameters.values()
                if p.default is inspect.Parameter.empty
                and p.kind
                not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
            ]
            assert len(params) == nargs, fn.__name__

    def test_every_operation_accepts_mask_accum_desc(self):
        # the ⊙=, mask, transpose machinery applies uniformly (Table II note)
        for fn in (grb.mxm, grb.mxv, grb.vxm, grb.ewise_add, grb.ewise_mult,
                   grb.apply, grb.transpose, grb.reduce_to_vector):
            params = list(inspect.signature(fn).parameters)
            assert "accum" in params or params[2] == "accum", fn.__name__
            assert "desc" in params, fn.__name__


class TestTableIII:
    """GraphBLAS data types."""

    def test_all_types_present(self):
        # GrB_Info -> Info enum; GrB_Index -> Python int / int64 arrays
        assert grb.Info.SUCCESS == 0
        assert isinstance(grb.Matrix(grb.BOOL, 1, 1), grb.Matrix)
        assert isinstance(grb.Vector(grb.BOOL, 1), grb.Vector)
        assert isinstance(grb.descriptor_new(), grb.Descriptor)
        assert isinstance(grb.monoid("GrB_PLUS_MONOID_INT32"), grb.Monoid)
        assert isinstance(
            grb.semiring("GrB_PLUS_TIMES_SEMIRING_INT32"), grb.Semiring
        )
        assert isinstance(grb.INT32, grb.GrBType)


class TestTableIV:
    """The predefined operators named in the paper."""

    @pytest.mark.parametrize(
        "name",
        [
            "GrB_TIMES_INT32",
            "GrB_PLUS_INT32",
            "GrB_PLUS_FP32",
            "GrB_TIMES_FP32",
        ],
    )
    def test_paper_binary_ops(self, name):
        assert name in BINARY_REGISTRY

    @pytest.mark.parametrize("name", ["GrB_MINV_FP32", "GrB_IDENTITY_BOOL"])
    def test_paper_unary_ops(self, name):
        assert name in UNARY_REGISTRY

    def test_registry_is_comprehensive(self):
        # full typed families: hundreds of predefined operators, as in C
        assert len(BINARY_REGISTRY) >= 180
        assert len(UNARY_REGISTRY) >= 50


class TestTableV:
    """Literals (checked in detail in test_descriptor; inventory here)."""

    def test_literals(self):
        for lit in ("ALL", "NULL", "OUTP", "MASK", "INP0", "INP1",
                    "SCMP", "TRAN", "REPLACE", "BOOL", "INT32", "FP32"):
            assert hasattr(grb, lit)

    def test_success_literal(self):
        assert grb.Info.SUCCESS.name == "SUCCESS"


class TestTableVI:
    """Methods used in the BC example."""

    def test_methods_exist(self):
        assert callable(grb.monoid_new)        # GrB_Monoid_new
        assert callable(grb.semiring_new)      # GrB_Semiring_new
        assert callable(grb.vector_new)        # GrB_Vector_new
        assert callable(grb.matrix_new)        # GrB_Matrix_new
        assert callable(grb.descriptor_new)    # GrB_Descriptor_new
        assert callable(grb.descriptor_set)    # GrB_Descriptor_set
        assert callable(grb.Matrix.build)      # GrB_Matrix_build
        assert callable(grb.Matrix.nvals)      # GrB_Matrix_nvals
        assert isinstance(grb.Matrix.nrows, property)  # GrB_Matrix_nrows
        assert callable(grb.mxm)
        assert callable(grb.eWiseMult)
        assert callable(grb.eWiseAdd)
        assert callable(grb.extract)
        assert callable(grb.assign)
        assert callable(grb.apply)
        assert callable(grb.reduce)


class TestFigure1:
    """Hierarchy of algebraic object classes."""

    def test_semiring_composes_monoid_and_binop(self):
        from repro.ops.base import BinaryOp

        s = predefined.PLUS_TIMES[grb.FP32]
        assert isinstance(s.add, grb.Monoid)
        assert isinstance(s.mul, BinaryOp)
        assert isinstance(s.add.op, BinaryOp)
        # monoid: one domain; multiply: up to three
        assert s.add.op.has_monoid_domains
        assert (s.d_in1, s.d_in2, s.d_out) == (grb.FP32, grb.FP32, grb.FP32)


class TestFigure2:
    """GrB_mxm signature: seven parameters in the paper's order."""

    def test_signature_order(self):
        params = list(inspect.signature(grb.mxm).parameters)
        assert params == ["C", "Mask", "accum", "op", "A", "B", "desc"]

    def test_desc_optional_with_null_default(self):
        sig = inspect.signature(grb.mxm)
        assert sig.parameters["desc"].default is None  # GrB_NULL


class TestFigure3:
    """BC_update runs and matches the independent baseline (full checks in
    test_algorithms)."""

    def test_bc_update_smoke(self):
        from repro.algorithms import bc_update
        from repro.io import cycle_graph

        A = cycle_graph(5, domain=grb.INT32)
        delta = bc_update(A, np.arange(5))
        # cycle: every vertex lies on the same number of shortest paths
        d = delta.to_dense(0.0)
        assert np.allclose(d, d[0])


class TestFuzzSpecCoverage:
    """The conformance fuzzer's default corpus reaches every operation row
    of the paper's tables, each with masked and accumulated variants
    (ISSUE 2 acceptance: spec-coverage accounting over the operation ×
    mask-kind × accum × descriptor × dtype-class cross product)."""

    def test_default_corpus_has_no_gaps(self):
        from repro.fuzz import CANONICAL_OPS, generate_corpus, measure_corpus

        cov = measure_corpus(generate_corpus(0, 150))
        assert cov.gaps() == [], "\n".join(cov.gaps())
        assert cov.ops_seen() == set(CANONICAL_OPS)
        assert cov.masked_ops() == set(CANONICAL_OPS)
        assert cov.accumulated_ops() == set(CANONICAL_OPS)

    def test_coverage_axes_span_the_tables(self):
        from repro.fuzz import generate_corpus, measure_corpus

        cells = measure_corpus(generate_corpus(0, 150)).cells
        assert {c.mask for c in cells} == {
            "none", "value", "value_comp", "struct", "struct_comp"
        }
        assert {c.dtype_class for c in cells} == {"bool", "int", "float", "udt"}
        descriptors = {c.descriptor for c in cells}
        assert "default" in descriptors and "replace" in descriptors
        assert any("tran" in d for d in descriptors)
