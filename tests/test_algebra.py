"""Monoids and semirings (paper section III-B, Fig. 1, Table I)."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary


class TestMonoidConstruction:
    def test_monoid_new_fig3_line10(self):
        # GrB_Monoid_new(&Int32Add, GrB_INT32, GrB_PLUS_INT32, 0)
        m = grb.monoid_new(grb.binary_op("GrB_PLUS_INT32"), 0)
        assert m.domain is grb.INT32
        assert m.identity == 0
        assert m(2, 3) == 5

    def test_wrong_identity_rejected(self):
        with pytest.raises(grb.InvalidValue):
            grb.monoid_new(grb.binary_op("GrB_PLUS_INT32"), 1)

    def test_multi_domain_op_rejected(self):
        # EQ_INT32 : INT32 x INT32 -> BOOL is not monoid-eligible
        with pytest.raises(grb.DomainMismatch):
            grb.monoid_new(binary.EQ[grb.INT32], True)

    def test_non_associative_op_rejected(self):
        with pytest.raises(grb.InvalidValue):
            grb.monoid_new(binary.MINUS[grb.INT32], 0)

    def test_user_op_monoid_with_flag(self):
        op = grb.binary_op_new(
            lambda a, b: max(a, b), grb.INT64, grb.INT64, grb.INT64,
            associative=True, commutative=True, name="mymax",
        )
        m = grb.monoid_new(op, np.iinfo(np.int64).min)
        assert m(3, 7) == 7

    def test_reduce_array(self):
        m = predefined.MIN_MONOID[grb.FP64]
        assert m.reduce_array(np.array([3.0, 1.0, 2.0])) == 1.0
        assert m.reduce_array(np.array([])) == np.inf  # identity when empty

    def test_registry_lookup(self):
        m = grb.monoid("GrB_PLUS_MONOID_INT32")
        assert m.identity == 0 and m.domain is grb.INT32
        with pytest.raises(grb.InvalidValue):
            grb.monoid("GrB_NOPE_MONOID")


class TestPredefinedMonoidIdentities:
    @pytest.mark.parametrize("t", [grb.INT32, grb.FP64, grb.UINT8])
    def test_plus_times_identities(self, t):
        assert predefined.PLUS_MONOID[t].identity == 0
        assert predefined.TIMES_MONOID[t].identity == 1

    def test_min_max_identities(self):
        assert predefined.MIN_MONOID[grb.FP64].identity == np.inf
        assert predefined.MAX_MONOID[grb.FP64].identity == -np.inf
        assert predefined.MIN_MONOID[grb.INT8].identity == 127
        assert predefined.MAX_MONOID[grb.INT8].identity == -128

    def test_boolean_monoids(self):
        assert predefined.LOR_MONOID[grb.BOOL].identity == False  # noqa: E712
        assert predefined.LAND_MONOID[grb.BOOL].identity == True  # noqa: E712
        assert predefined.LXOR_MONOID[grb.BOOL].identity == False  # noqa: E712

    def test_terminal_annotations(self):
        assert predefined.MIN_MONOID[grb.INT32].terminal == -(2**31)
        assert predefined.LOR_MONOID[grb.BOOL].terminal == True  # noqa: E712


class TestSemiringConstruction:
    def test_semiring_new_fig3_line12(self):
        # GrB_Semiring_new(&Int32AddMul, Int32Add, GrB_TIMES_INT32)
        add = grb.monoid("GrB_PLUS_MONOID_INT32")
        s = grb.semiring_new(add, grb.binary_op("GrB_TIMES_INT32"))
        assert s.zero == 0
        assert s.d_in1 is grb.INT32 and s.d_out is grb.INT32

    def test_domain_mismatch_rejected(self):
        add = grb.monoid("GrB_PLUS_MONOID_FP32")
        with pytest.raises(grb.DomainMismatch):
            grb.semiring_new(add, grb.binary_op("GrB_TIMES_INT32"))

    def test_mixed_domain_multiply_allowed(self):
        # GraphBLAS semirings allow D1 x D2 -> D3 multiply (Fig. 1's point)
        mul = grb.binary_op_new(
            lambda a, b: float(a) * b, grb.INT32, grb.FP64, grb.FP64,
            name="mixed_mul",
        )
        s = grb.semiring_new(grb.monoid("GrB_PLUS_MONOID_FP64"), mul)
        assert s.d_in1 is grb.INT32 and s.d_in2 is grb.FP64

    def test_registry(self):
        s = grb.semiring("GrB_MIN_PLUS_SEMIRING_FP64")
        assert s.zero == np.inf


class TestTable1Semirings:
    """Every row of Table I, with its ⊕/⊗/0 verified."""

    def test_standard_arithmetic(self):
        s = predefined.PLUS_TIMES[grb.FP64]
        assert s.zero == 0.0
        assert s.add(2.0, 3.0) == 5.0 and s.mul(2.0, 3.0) == 6.0

    def test_max_plus(self):
        s = predefined.MAX_PLUS[grb.FP64]
        assert s.zero == -np.inf
        assert s.add(2.0, 3.0) == 3.0 and s.mul(2.0, 3.0) == 5.0
        # "1" of max-plus is 0: x ⊗ 0 == x
        assert s.mul(7.0, 0.0) == 7.0

    def test_min_max(self):
        s = predefined.MIN_MAX[grb.FP64]
        assert s.zero == np.inf
        assert s.add(2.0, 3.0) == 2.0 and s.mul(2.0, 3.0) == 3.0
        # "1" of min-max is 0 on the nonnegative domain
        assert s.mul(7.0, 0.0) == 7.0

    def test_gf2(self):
        s = predefined.LXOR_LAND[grb.BOOL]
        assert s.zero == False  # noqa: E712
        assert s.add(True, True) == False  # noqa: E712  xor
        assert s.mul(True, True) == True  # noqa: E712  and

    def test_power_set(self):
        s = grb.powerset_semiring()
        assert s.zero == frozenset()
        assert s.add(frozenset({1}), frozenset({2})) == frozenset({1, 2})
        assert s.mul(frozenset({1, 2}), frozenset({2, 3})) == frozenset({2})
        # ∅ annihilates ∩ and is the identity of ∪
        assert s.mul(frozenset({1}), frozenset()) == frozenset()
        assert s.add(frozenset({1}), frozenset()) == frozenset({1})

    def test_table1_inventory_complete(self):
        assert len(predefined.TABLE1_SEMIRINGS) == 5
        labels = [row[0] for row in predefined.TABLE1_SEMIRINGS]
        assert "Galois field GF(2)" in labels
        for _, factory, _, _ in predefined.TABLE1_SEMIRINGS:
            assert isinstance(factory(), grb.Semiring)


class TestAlgebraHierarchy:
    """Fig. 1: semiring = monoid + binary op; both recoverable."""

    def test_decomposition(self):
        s = predefined.PLUS_TIMES[grb.INT32]
        assert isinstance(s.add, grb.Monoid)
        assert s.add_op is s.add.op
        assert s.mul is binary.TIMES[grb.INT32]

    def test_no_multiplicative_identity_required(self):
        # GrB_Semiring_new takes only (monoid, binop) — no "1"
        import inspect

        params = inspect.signature(grb.semiring_new).parameters
        assert list(params)[:2] == ["add", "mul"]
