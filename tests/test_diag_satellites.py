"""Observability satellites: stream gauges on the Prometheus surface and
the loadgen ``--stats-out`` schema dashboards key on.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.service import SHARED_PREFIX, SHARED_SESSION
from repro.service.loadgen import main as loadgen_main
from repro.service.server import Server

_G = {
    "name": "G", "kind": "matrix", "dtype": "FP64", "shape": [8, 8],
    "entries": [[0, 1, 1.0], [1, 2, 2.0], [2, 0, 3.0]],
}


def _gauge(text: str, name: str) -> float:
    m = re.search(rf"^{re.escape(name)} (\S+)$", text, re.M)
    assert m, f"gauge {name} missing from metrics exposition"
    return float(m.group(1))


class TestStreamGaugesOnMetricsWire:
    def test_plaintext_metrics_export_stream_counters(self):
        with Server(port=0).start() as server:
            svc = server.service
            svc.request(SHARED_SESSION, "define", _G)
            sess = svc.open_session("m")

            def pagerank():
                return svc.request(sess, "algorithm", {
                    "algo": "pagerank", "graph": SHARED_PREFIX + "G",
                    "args": {},
                })

            pagerank()  # creates the incremental handle
            svc.request(SHARED_SESSION, "stream_mutate", {
                "graph": "G", "set": [[3, 0, 1.0]], "remove": [],
            })
            pagerank()  # advances + serves it

            text = server.handle_plain("metrics")
            st = svc.streams.stats()
            assert st["created"] >= 1 and st["served"] >= 1
            for dotted, key in (
                ("repro_stream_handles", "handles"),
                ("repro_stream_handles_created", "created"),
                ("repro_stream_handles_advanced", "advanced"),
                ("repro_stream_handles_dropped", "dropped"),
                ("repro_stream_handles_served", "served"),
            ):
                assert f"# TYPE {dotted} gauge" in text
                assert _gauge(text, dotted) == st[key]


class TestLoadgenStatsOutSchema:
    @pytest.fixture(scope="class")
    def stats_doc(self, tmp_path_factory):
        """One small CLI run shared by the schema assertions (seed 5 over
        48 requests deterministically mixes in 6 stream_mutate ops)."""
        path = tmp_path_factory.mktemp("loadgen") / "stats.json"
        rc = loadgen_main([
            "--requests", "48", "--clients", "4", "--seed", "5",
            "--pipeline", "4", "--no-replay", "--stats-out", str(path),
        ])
        assert rc == 0
        return json.loads(path.read_text())

    def test_memo_rekey_counter_is_top_level(self, stats_doc):
        assert "cache_rekeys" in stats_doc
        assert isinstance(stats_doc["cache_rekeys"], int)
        assert stats_doc["cache_rekeys"] >= 0
        # and it mirrors the nested cache stats when the cache ran
        cache = (stats_doc["stats"].get("cache") or {})
        if cache:
            assert stats_doc["cache_rekeys"] == cache["rekeys"]

    def test_per_kind_latency_includes_stream_mutate(self, stats_doc):
        timing = stats_doc["request_timing"]
        assert timing["count"] > 0
        by_kind = timing["by_request_kind"]
        assert "stream_mutate" in by_kind, sorted(by_kind)
        sm = by_kind["stream_mutate"]
        assert sm["count"] > 0
        for metric in ("total_us", "queue_wait_us", "issue_us",
                       "drain_share_us"):
            assert sm[metric]["p50"] >= 0.0
            assert sm[metric]["p99"] >= sm[metric]["p50"]
        # the coarse split stays alongside the per-kind one
        assert by_kind["stream_mutate"]["count"] <= (
            timing["by_kind"]["mutate"]["count"]
        )

    def test_diag_summary_rides_along(self, stats_doc):
        assert "diag" in stats_doc
        assert "dumps" in stats_doc["diag"]
        assert stats_doc["diag"]["dumps"] == 0, (
            "healthy loadgen run should not dump the flight recorder"
        )
