"""``eWiseAdd`` (union) and ``eWiseMult`` (intersection) — Table II rows 4-5."""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary

from tests.conftest import random_matrix, random_vector


class TestEWiseAddMatrix:
    def test_union_semantics(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0, 0], [0, 1], [1, 2])
        B = grb.Matrix.from_coo(grb.INT64, 2, 2, [0, 1], [1, 1], [10, 20])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B)
        assert {(i, j): int(v) for i, j, v in C} == {
            (0, 0): 1,      # A only: copied through
            (0, 1): 12,     # both: combined
            (1, 1): 20,     # B only: copied through
        }

    def test_single_present_not_combined_with_identity(self):
        # eWiseAdd copies single-present values; it does NOT apply the op
        # against an implied zero (MINUS would negate if it did)
        B = grb.Matrix.from_coo(grb.INT64, 1, 2, [0], [1], [7])
        A = grb.Matrix(grb.INT64, 1, 2)
        C = grb.Matrix(grb.INT64, 1, 2)
        grb.ewise_add(C, None, None, binary.MINUS[grb.INT64], A, B)
        assert C.extract_element(0, 1) == 7  # NOT -7

    def test_fig3_numsp_accumulation(self):
        # line 42: numsp += frontier via eWiseAdd with the Int32Add monoid
        numsp = grb.Matrix.from_coo(grb.INT32, 3, 2, [0, 1], [0, 1], [1, 1])
        frontier = grb.Matrix.from_coo(grb.INT32, 3, 2, [1, 2], [0, 1], [2, 3])
        grb.ewise_add(
            numsp, None, None, grb.monoid("GrB_PLUS_MONOID_INT32"),
            numsp, frontier,
        )
        assert {(i, j): int(v) for i, j, v in numsp} == {
            (0, 0): 1, (1, 0): 2, (1, 1): 1, (2, 1): 3,
        }

    def test_op_dispatch_semiring_uses_add(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [3])
        B = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [4])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_add(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert C.extract_element(0, 0) == 7  # ⊕, not ⊗

    def test_random_vs_dense(self, rng):
        A = random_matrix(rng, 8, 5, 0.4)
        B = random_matrix(rng, 8, 5, 0.4)
        C = grb.Matrix(grb.INT64, 8, 5)
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B)
        assert (C.to_dense(0) == A.to_dense(0) + B.to_dense(0)).all()

    def test_transposed_input(self, rng):
        A = random_matrix(rng, 5, 8, 0.4)
        B = random_matrix(rng, 8, 5, 0.4)
        C = grb.Matrix(grb.INT64, 8, 5)
        grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B, grb.DESC_T0)
        assert (C.to_dense(0) == A.to_dense(0).T + B.to_dense(0)).all()

    def test_shape_mismatch(self):
        A = grb.Matrix(grb.INT64, 2, 3)
        B = grb.Matrix(grb.INT64, 3, 2)
        C = grb.Matrix(grb.INT64, 2, 3)
        with pytest.raises(grb.DimensionMismatch):
            grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], A, B)


class TestEWiseMultMatrix:
    def test_intersection_semantics(self):
        A = grb.Matrix.from_coo(grb.INT64, 2, 2, [0, 0], [0, 1], [2, 3])
        B = grb.Matrix.from_coo(grb.INT64, 2, 2, [0, 1], [1, 1], [10, 20])
        C = grb.Matrix(grb.INT64, 2, 2)
        grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], A, B)
        assert {(i, j): int(v) for i, j, v in C} == {(0, 1): 30}

    def test_no_implied_zero_interaction(self):
        # section II's point: ⊗ only touches the stored intersection, so
        # DIV never sees a zero denominator from an absent element
        A = grb.Matrix.from_coo(grb.FP64, 1, 2, [0, 0], [0, 1], [6.0, 8.0])
        B = grb.Matrix.from_coo(grb.FP64, 1, 2, [0], [1], [2.0])
        C = grb.Matrix(grb.FP64, 1, 2)
        grb.ewise_mult(C, None, None, binary.DIV[grb.FP64], A, B)
        assert C.nvals() == 1
        assert C.extract_element(0, 1) == 4.0

    def test_op_dispatch_semiring_uses_mult(self):
        A = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [3])
        B = grb.Matrix.from_coo(grb.INT64, 1, 1, [0], [0], [4])
        C = grb.Matrix(grb.INT64, 1, 1)
        grb.ewise_mult(C, None, None, predefined.PLUS_TIMES[grb.INT64], A, B)
        assert C.extract_element(0, 0) == 12  # ⊗

    def test_fig3_tally_pattern(self):
        # line 70: w<sigmas[i]> = bcu .* nspinv with replace
        bcu = grb.Matrix.from_dense(grb.FP32, [[1.0, 2.0], [3.0, 4.0]])
        nspinv = grb.Matrix.from_dense(grb.FP32, [[0.5, 0.5], [0.5, 0.5]])
        sigma = grb.Matrix.from_coo(grb.BOOL, 2, 2, [0], [1], [True])
        w = grb.Matrix.from_dense(grb.FP32, [[9.0, 9.0], [9.0, 9.0]])
        grb.ewise_mult(w, sigma, None, binary.TIMES[grb.FP32], bcu, nspinv, grb.DESC_R)
        assert {(i, j): float(v) for i, j, v in w} == {(0, 1): 1.0}

    def test_accum_into_output(self):
        # line 74: bcu += w .* numsp (accum PLUS, no mask)
        bcu = grb.Matrix.from_dense(grb.FP32, [[1.0, 1.0]])
        w = grb.Matrix.from_coo(grb.FP32, 1, 2, [0], [0], [2.5])
        numsp = grb.Matrix.from_dense(grb.FP32, [[2.0, 2.0]])
        grb.ewise_mult(
            bcu, None, binary.PLUS[grb.FP32], binary.TIMES[grb.FP32], w, numsp
        )
        assert bcu.to_dense(0).tolist() == [[6.0, 1.0]]


class TestEWiseVector:
    def test_vector_add_and_mult(self, rng):
        u = random_vector(rng, 10, 0.5)
        v = random_vector(rng, 10, 0.5)
        w = grb.Vector(grb.INT64, 10)
        grb.ewise_add(w, None, None, binary.PLUS[grb.INT64], u, v)
        assert (w.to_dense(0) == u.to_dense(0) + v.to_dense(0)).all()
        grb.ewise_mult(w, None, None, binary.TIMES[grb.INT64], u, v)
        u_pat = {i for i, _ in u}
        v_pat = {i for i, _ in v}
        assert {i for i, _ in w} == u_pat & v_pat

    def test_vector_size_mismatch(self):
        with pytest.raises(grb.DimensionMismatch):
            grb.ewise_add(
                grb.Vector(grb.INT64, 3), None, None, binary.PLUS[grb.INT64],
                grb.Vector(grb.INT64, 3), grb.Vector(grb.INT64, 4),
            )

    def test_mixed_kind_rejected(self):
        with pytest.raises(grb.InvalidValue):
            grb.ewise_add(
                grb.Vector(grb.INT64, 3), None, None, binary.PLUS[grb.INT64],
                grb.Matrix(grb.INT64, 3, 3), grb.Vector(grb.INT64, 3),
            )


class TestCastingInEWise:
    def test_cross_domain_inputs(self):
        # INT32 and FP64 inputs through an FP64 op
        A = grb.Matrix.from_coo(grb.INT32, 1, 2, [0, 0], [0, 1], [3, 5])
        B = grb.Matrix.from_coo(grb.FP64, 1, 2, [0], [0], [0.5])
        C = grb.Matrix(grb.FP64, 1, 2)
        grb.ewise_add(C, None, None, binary.PLUS[grb.FP64], A, B)
        assert C.extract_element(0, 0) == 3.5
        assert C.extract_element(0, 1) == 5.0

    def test_output_cast(self):
        # FP64 result cast into an INT32 output (truncation)
        A = grb.Matrix.from_coo(grb.FP64, 1, 1, [0], [0], [2.7])
        B = grb.Matrix.from_coo(grb.FP64, 1, 1, [0], [0], [0.6])
        C = grb.Matrix(grb.INT32, 1, 1)
        grb.ewise_add(C, None, None, binary.PLUS[grb.FP64], A, B)
        assert C.extract_element(0, 0) == 3  # trunc(3.3)

    def test_invalid_op_type(self):
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            grb.ewise_add(A, None, None, "plus", A, A)
