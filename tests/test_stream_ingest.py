"""Streaming ingest: DCSR hypersparse views, the EdgeBuffer COO append
buffer with last-writer-wins merge semantics, and the deferred rebuild's
hazard ordering inside the planner DAG (reads submitted before a flush
see pre-flush content; reads after see post-flush content)."""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.containers.formats.dcsr import dcsr_from_keys
from repro.info import InvalidValue
from repro.stream import EdgeBuffer


@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


def _tuples(m: grb.Matrix) -> list[tuple[int, int, float]]:
    rows, cols, vals = m.extract_tuples()
    return sorted(zip(rows.tolist(), cols.tolist(), vals.tolist()))


class TestDCSRView:
    def test_hypersparse_rows_compressed(self):
        # 3 hot rows of a 10k-row vertex space: the view stores 3 row ids,
        # not a 10k-long pointer
        n = 10_000
        rows = [7, 7, 512, 512, 512, 9999]
        cols = [1, 3, 0, 2, 4, 9998]
        vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        m = grb.Matrix.from_coo(grb.FP64, n, n, rows, cols, vals)
        m.nvals()                       # sequence point before the view
        d = m.dcsr()
        assert d.nvec == 3
        assert d.nnz == 6
        assert d.row_ids.tolist() == [7, 512, 9999]
        assert d.hypersparsity == pytest.approx(3 / n)
        assert d.row_counts().tolist() == [2, 3, 1]

    def test_row_lookup_present_and_absent(self):
        m = grb.Matrix.from_coo(
            grb.FP64, 100, 100, [5, 5, 80], [2, 9, 0], [1.0, 2.0, 3.0]
        )
        m.nvals()
        d = m.dcsr()
        idx, vals = d.row(5)
        assert idx.tolist() == [2, 9]
        assert vals.tolist() == [1.0, 2.0]
        idx, vals = d.row(6)            # never stored
        assert len(idx) == 0 and len(vals) == 0
        assert d.row_slice(6) == slice(0, 0)

    def test_empty_matrix(self):
        m = grb.Matrix(grb.FP64, 50, 50)
        m.nvals()
        d = m.dcsr()
        assert d.nvec == 0 and d.nnz == 0
        assert d.hypersparsity == 0.0
        idx, vals = d.row(0)
        assert len(idx) == 0 and len(vals) == 0

    def test_agrees_with_csr(self):
        rng = np.random.default_rng(42)
        keys = np.sort(rng.choice(30 * 30, size=40, replace=False))
        vals = rng.uniform(0.5, 2.0, 40)
        d = dcsr_from_keys(keys.astype(np.int64), vals, 30, 30)
        m = grb.Matrix.from_coo(
            grb.FP64, 30, 30, keys // 30, keys % 30, vals
        )
        m.nvals()
        c = m.csr()
        for i in range(30):
            ci = c.indices[c.indptr[i]:c.indptr[i + 1]]
            di, _ = d.row(i)
            assert ci.tolist() == di.tolist()

    def test_view_cached_and_invalidated_on_mutation(self):
        m = grb.Matrix.from_coo(grb.FP64, 20, 20, [1], [1], [1.0])
        m.nvals()
        first = m.dcsr()
        assert m.dcsr() is first        # cached per content version
        m.set_element(3, 4, 2.0)
        m.nvals()                       # force the deferred write
        after = m.dcsr()
        assert after is not first
        assert after.row(3)[0].tolist() == [4]


class TestEdgeBuffer:
    def _graph(self) -> grb.Matrix:
        return grb.Matrix.from_coo(
            grb.FP64, 8, 8, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0]
        )

    def test_batched_sets_and_removes(self):
        m = self._graph()
        buf = EdgeBuffer(m)
        buf.set_edges([4, 5], [4, 5], [9.0, 8.0])
        buf.remove_edges([1], [2])
        assert buf.pending == 3
        fr = buf.flush()
        assert buf.pending == 0
        assert _tuples(m) == [
            (0, 1, 1.0), (2, 3, 3.0), (4, 4, 9.0), (5, 5, 8.0)
        ]
        d = fr.delta
        assert d.size == 3
        assert len(d.added) == 2 and len(d.removed) == 1

    def test_last_writer_wins_within_a_batch(self):
        m = self._graph()
        buf = EdgeBuffer(m)
        # set then remove deletes; remove then set stores; two sets keep
        # the newer value
        buf.set_edges([0], [1], [7.0]).remove_edges([0], [1])
        buf.remove_edges([2], [3]).set_edges([2], [3], [5.0])
        buf.set_edges([6], [6], [1.0]).set_edges([6], [6], [2.0])
        buf.flush()
        assert _tuples(m) == [(1, 2, 2.0), (2, 3, 5.0), (6, 6, 2.0)]

    def test_noop_writes_are_filtered_from_the_delta(self):
        m = self._graph()
        buf = EdgeBuffer(m)
        buf.set_edges([0], [1], [1.0])          # rewrite of existing value
        buf.remove_edges([7], [7])              # absent edge
        fr = buf.flush()
        assert fr.delta.is_empty()
        assert _tuples(m) == [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]

    def test_value_change_recorded_as_changed(self):
        m = self._graph()
        fr = EdgeBuffer(m).set_edges([0], [1], [4.5]).flush()
        d = fr.delta
        assert d.size == 1
        assert len(d.changed) == 1
        assert d.old_values[0] == 1.0 and d.new_values[0] == 4.5
        assert d.base_nnz == 3

    def test_scalar_value_broadcasts(self):
        m = grb.Matrix(grb.FP64, 4, 4)
        EdgeBuffer(m).set_edges([0, 1, 2], [1, 2, 3], 6.0).flush()
        assert _tuples(m) == [(0, 1, 6.0), (1, 2, 6.0), (2, 3, 6.0)]

    def test_empty_flush_is_ready_immediately(self):
        m = self._graph()
        fr = EdgeBuffer(m).flush()
        assert fr.ready
        assert fr.delta.is_empty()

    def test_invalid_inputs_raise(self):
        with pytest.raises(InvalidValue):
            EdgeBuffer("not a matrix")
        m = self._graph()
        with pytest.raises(InvalidValue):
            EdgeBuffer(m).set_edges([0, 1], [0], [1.0, 2.0])
        with pytest.raises(InvalidValue):
            EdgeBuffer(m).remove_edges([0], [0, 1])
        with pytest.raises(grb.IndexOutOfBounds):
            EdgeBuffer(m).set_edges([99], [0], [1.0])

    def test_buffer_accumulates_across_flushes(self):
        m = grb.Matrix(grb.FP64, 6, 6)
        buf = EdgeBuffer(m)
        buf.set_edges([0], [0], [1.0]).flush()
        buf.set_edges([1], [1], [2.0]).flush()
        assert _tuples(m) == [(0, 0, 1.0), (1, 1, 2.0)]


class TestHazardOrdering:
    """The rebuild is a planner node: RAW/WAW edges, not wall-clock order,
    decide what each read sees."""

    def test_reads_straddling_a_flush_see_their_side(self, exec_mode):
        m = grb.Matrix.from_coo(grb.FP64, 4, 4, [0], [0], [1.0])
        u = grb.Vector.from_coo(grb.FP64, 4, [0, 1, 2, 3], [1.0] * 4)
        ring = predefined.PLUS_TIMES[grb.FP64]

        before = grb.Vector(grb.FP64, 4)
        after = grb.Vector(grb.FP64, 4)
        grb.mxv(before, None, None, ring, m, u)     # reads pre-flush m
        fr = EdgeBuffer(m).set_edges([1], [1], [5.0]).flush()
        grb.mxv(after, None, None, ring, m, u)      # reads post-flush m
        if exec_mode == "nonblocking_planner":
            # nothing forced yet: the rebuild is still a deferred node
            assert not fr.ready

        assert after.to_dense(0.0).tolist() == [1.0, 5.0, 0.0, 0.0]
        assert before.to_dense(0.0).tolist() == [1.0, 0.0, 0.0, 0.0]
        assert fr.ready

    def test_flush_orders_against_point_updates(self):
        # WAW: set_element, flush, set_element — last writer must win in
        # program order even when every write is deferred
        m = grb.Matrix(grb.FP64, 4, 4)
        m.set_element(0, 0, 1.0)
        EdgeBuffer(m).set_edges([0], [0], [2.0]).set_edges(
            [1], [1], [7.0]
        ).flush()
        m.set_element(0, 0, 3.0)
        assert _tuples(m) == [(0, 0, 3.0), (1, 1, 7.0)]

    def test_two_flushes_apply_in_order(self):
        m = grb.Matrix(grb.FP64, 4, 4)
        buf = EdgeBuffer(m)
        buf.set_edges([2], [2], [1.0]).flush()
        buf.set_edges([2], [2], [9.0]).remove_edges([3], [3]).flush()
        assert _tuples(m) == [(2, 2, 9.0)]

    def test_delta_is_exact_after_hazard_predecessors(self):
        # the first flush's write is still deferred when the second flush
        # is submitted; the second delta must still be computed against
        # the post-first-flush content
        m = grb.Matrix(grb.FP64, 4, 4)
        buf = EdgeBuffer(m)
        buf.set_edges([1], [1], [4.0]).flush()
        fr2 = buf.set_edges([1], [1], [4.0]).flush()   # rewrite, same value
        assert fr2.delta.is_empty()
