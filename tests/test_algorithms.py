"""Graph algorithms built on the API, validated against networkx and
analytic values."""

import networkx as nx
import numpy as np
import pytest

import repro as grb
from repro.algorithms import (
    bc_update,
    betweenness_centrality,
    bfs_levels,
    bfs_parents,
    brandes_baseline,
    connected_components,
    maximal_independent_set,
    pagerank,
    sssp,
    sssp_delta_log,
    triangle_count,
)
from repro.io import (
    erdos_renyi,
    from_networkx,
    grid_2d,
    path_graph,
    star_graph,
    to_networkx,
)

@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


@pytest.fixture(scope="module")
def digraph():
    return erdos_renyi(50, 220, seed=11, domain=grb.INT32)


@pytest.fixture(scope="module")
def undirected():
    G = nx.gnm_random_graph(36, 120, seed=13)
    return G


class TestBCUpdate:
    """Fig. 3's BC_update, the paper's central artifact."""

    def test_matches_brandes_full(self, digraph):
        got = betweenness_centrality(digraph, batch_size=16)
        want = brandes_baseline(digraph)
        assert np.allclose(got, want, atol=1e-3)

    def test_matches_networkx(self, digraph):
        got = betweenness_centrality(digraph, batch_size=50)
        nxbc = nx.betweenness_centrality(
            to_networkx(digraph, weighted=False), normalized=False
        )
        want = np.array([nxbc[i] for i in range(50)])
        assert np.allclose(got, want, atol=1e-3)

    def test_batch_size_invariance(self, digraph):
        # BC totals must not depend on how sources are batched
        a = betweenness_centrality(digraph, batch_size=1, sources=range(12))
        b = betweenness_centrality(digraph, batch_size=5, sources=range(12))
        c = betweenness_centrality(digraph, batch_size=12, sources=range(12))
        assert np.allclose(a, b, atol=1e-3)
        assert np.allclose(b, c, atol=1e-3)

    def test_path_graph_analytic(self):
        # directed path 0->1->2->3->4: BC(v) = #(s<v) * #(t>v)
        P = path_graph(5, domain=grb.INT32)
        got = betweenness_centrality(P, batch_size=5)
        want = np.array([0.0, 3.0, 4.0, 3.0, 0.0])
        assert np.allclose(got, want, atol=1e-4)

    def test_star_graph_analytic(self):
        # star with bidirectional spokes: hub lies on all leaf-leaf paths
        S = star_graph(6, domain=grb.INT32)
        got = betweenness_centrality(S, batch_size=6)
        # 5 leaves: 5*4 = 20 ordered leaf pairs through the hub
        assert got[0] == pytest.approx(20.0, abs=1e-3)
        assert np.allclose(got[1:], 0.0, atol=1e-4)

    def test_single_source_batch(self, digraph):
        delta = bc_update(digraph, [7])
        assert delta.size == 50
        full = brandes_baseline(digraph, sources=[7])
        assert np.allclose(delta.to_dense(0.0), full, atol=1e-4)

    def test_empty_batch_rejected(self, digraph):
        with pytest.raises(grb.InvalidValue):
            bc_update(digraph, [])

    def test_nonsquare_rejected(self):
        A = grb.Matrix(grb.INT32, 3, 4)
        with pytest.raises(grb.DimensionMismatch):
            bc_update(A, [0])

    def test_runs_in_nonblocking_mode(self):
        if grb.current_mode() is not grb.Mode.NONBLOCKING:
            grb.init(grb.Mode.NONBLOCKING)
        P = path_graph(6, domain=grb.INT32)
        got = betweenness_centrality(P, batch_size=3)
        want = np.array([0.0, 4.0, 6.0, 6.0, 4.0, 0.0])
        assert np.allclose(got, want, atol=1e-4)


class TestBFS:
    def test_levels_match_networkx(self, digraph):
        nxg = to_networkx(digraph, weighted=False)
        lv = bfs_levels(digraph, 3)
        want = nx.single_source_shortest_path_length(nxg, 3)
        got = {i: int(v) for i, v in lv}
        assert got == want

    def test_unreachable_vertices_undefined(self):
        P = path_graph(4, domain=grb.BOOL)  # directed: 3 cannot reach 0
        lv = bfs_levels(P, 3)
        assert {i: int(v) for i, v in lv} == {3: 0}

    def test_parents_form_valid_tree(self, digraph):
        nxg = to_networkx(digraph, weighted=False)
        want_depth = nx.single_source_shortest_path_length(nxg, 0)
        par = bfs_parents(digraph, 0)
        got = {i: int(v) for i, v in par}
        assert set(got) == set(want_depth)
        for v, p in got.items():
            if v == 0:
                assert p == 0
            else:
                assert nxg.has_edge(p, v)
                assert want_depth[p] + 1 == want_depth[v]

    def test_grid_levels(self):
        G = grid_2d(4, 4)
        lv = bfs_levels(G, 0)
        got = lv.to_dense(-1).reshape(4, 4)
        for r in range(4):
            for c in range(4):
                assert got[r, c] == r + c  # manhattan distance


class TestSSSP:
    def test_weighted_vs_dijkstra(self):
        W = erdos_renyi(40, 200, seed=23, domain=grb.FP64, weighted=True)
        nxw = to_networkx(W)
        d = sssp(W, 0)
        want = nx.single_source_dijkstra_path_length(nxw, 0)
        got = {int(i): float(v) for i, v in d}
        assert set(got) == set(want)
        for k in got:
            assert got[k] == pytest.approx(want[k])

    def test_negative_edges_bellman_ford(self):
        A = grb.Matrix.from_coo(
            grb.FP64, 4, 4, [0, 0, 1, 2], [1, 2, 3, 3], [5.0, 1.0, -3.0, 10.0]
        )
        d = sssp(A, 0)
        assert d.extract_element(3) == 2.0  # 0->1->3 = 5-3

    def test_negative_cycle_detected(self):
        A = grb.Matrix.from_coo(
            grb.FP64, 3, 3, [0, 1, 2], [1, 2, 1], [1.0, -2.0, 1.0]
        )
        with pytest.raises(grb.InvalidValue):
            sssp(A, 0)

    def test_delta_log_monotone(self):
        G = erdos_renyi(30, 120, seed=2, domain=grb.FP64, weighted=True)
        series = sssp_delta_log(G, 0)
        assert all(b >= a for a, b in zip(series, series[1:]))


class TestPageRank:
    def test_matches_networkx(self, digraph):
        got = pagerank(digraph)
        want = nx.pagerank(to_networkx(digraph), alpha=0.85, tol=1e-12)
        for i in range(digraph.nrows):
            assert got[i] == pytest.approx(want[i], abs=1e-6)

    def test_dangling_nodes_handled(self):
        # path graph: last vertex is dangling
        P = path_graph(5, domain=grb.BOOL)
        got = pagerank(P)
        want = nx.pagerank(to_networkx(P), alpha=0.85, tol=1e-12)
        for i in range(5):
            assert got[i] == pytest.approx(want[i], abs=1e-6)

    def test_sums_to_one(self, digraph):
        assert pagerank(digraph).sum() == pytest.approx(1.0)


class TestTriangles:
    def test_matches_networkx(self, undirected):
        A = from_networkx(undirected)
        assert triangle_count(A) == sum(nx.triangles(undirected).values()) // 3

    def test_complete_graph(self):
        from repro.io import complete_graph

        K5 = complete_graph(5)
        assert triangle_count(K5) == 10  # C(5,3)

    def test_triangle_free(self):
        G = grid_2d(5, 5)
        assert triangle_count(G) == 0


class TestComponents:
    def test_matches_networkx(self, undirected):
        A = from_networkx(undirected)
        got = connected_components(A)
        for comp in nx.connected_components(undirected):
            m = min(comp)
            for v in comp:
                assert got[v] == m

    def test_disconnected(self):
        # two disjoint edges + isolated vertex
        A = grb.Matrix.from_coo(
            grb.BOOL, 5, 5, [0, 1, 2, 3], [1, 0, 3, 2], [True] * 4
        )
        got = connected_components(A)
        assert got.tolist() == [0, 0, 2, 2, 4]


class TestMIS:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_independent_and_maximal(self, undirected, seed):
        A = from_networkx(undirected)
        mis = set(int(v) for v in maximal_independent_set(A, seed=seed))
        for u, v in undirected.edges():
            assert not (u in mis and v in mis)
        for v in undirected.nodes():
            assert v in mis or any(u in mis for u in undirected.neighbors(v))

    def test_isolated_vertices_always_in_set(self):
        A = grb.Matrix.from_coo(grb.BOOL, 4, 4, [0], [1], [True])
        # symmetric edge 0-1 plus isolated 2, 3
        B = grb.Matrix.from_coo(
            grb.BOOL, 4, 4, [0, 1], [1, 0], [True, True]
        )
        mis = set(int(v) for v in maximal_independent_set(B))
        assert {2, 3} <= mis
