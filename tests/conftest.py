"""Shared fixtures: context isolation, random collection builders, and
oracle-comparison helpers against the reference implementation."""

from __future__ import annotations

import numpy as np
import pytest

import repro as grb
from repro import context, parallel
from repro.reference import RefMatrix, RefVector


@pytest.fixture(autouse=True)
def fresh_context():
    """Every test starts from the pristine default (blocking) context."""
    context._reset()
    yield
    context._reset()
    # shard-backend tests flip process-global execution knobs; restore the
    # defaults so ordering between test modules can never matter
    parallel.set_backend("threads")
    parallel.set_parallel_threshold(parallel.config.DEFAULT_THRESHOLD)
    parallel.set_shard_grid(None)
    parallel.set_kernel_backend("interpreter")


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # the paper's publication date


#: execution modes the algorithm suites run under (see exec_mode below)
EXEC_MODES = ("blocking", "nonblocking_planner")


@pytest.fixture
def exec_mode(request, fresh_context):
    """Execution mode for a test: ``blocking`` (the default context) or
    ``nonblocking_planner`` (nonblocking mode, full drain-time planner).

    Modules opt in by declaring a module-level autouse fixture that depends
    on ``exec_mode``; ``pytest_generate_tests`` then runs every test of the
    module once per mode.  Results must be identical in both — mode is an
    execution strategy, never a semantic (section III-B).
    """
    mode = getattr(request, "param", "blocking")
    if mode == "nonblocking_planner":
        context.init(context.Mode.NONBLOCKING)
    yield mode


def pytest_generate_tests(metafunc):
    if "exec_mode" in metafunc.fixturenames:
        metafunc.parametrize("exec_mode", list(EXEC_MODES), indirect=True)


def random_matrix(
    rng,
    nrows: int,
    ncols: int,
    density: float = 0.3,
    domain=grb.INT64,
    low: int = -4,
    high: int = 5,
):
    """A random matrix with ~density*nrows*ncols stored elements.

    Integer values stay small so cross-backend comparisons avoid overflow
    except where a test exercises wrap-around deliberately.
    """
    nnz = int(round(density * nrows * ncols))
    keys = rng.choice(nrows * ncols, size=min(nnz, nrows * ncols), replace=False)
    rows, cols = np.divmod(keys, ncols)
    if domain.is_bool:
        vals = rng.integers(0, 2, len(keys)).astype(bool)
    elif domain.is_integral:
        vals = rng.integers(low, high, len(keys))
    else:
        vals = rng.uniform(-2.0, 2.0, len(keys))
    return grb.Matrix.from_coo(domain, nrows, ncols, rows, cols, vals)


def random_vector(rng, size: int, density: float = 0.4, domain=grb.INT64):
    nnz = max(0, int(round(density * size)))
    idx = rng.choice(size, size=min(nnz, size), replace=False)
    if domain.is_bool:
        vals = rng.integers(0, 2, len(idx)).astype(bool)
    elif domain.is_integral:
        vals = rng.integers(-4, 5, len(idx))
    else:
        vals = rng.uniform(-2.0, 2.0, len(idx))
    return grb.Vector.from_coo(domain, size, idx, vals)


def assert_matrix_equals_ref(M: grb.Matrix, R: RefMatrix, approx=False):
    got = RefMatrix.from_grb(M)
    assert (got.nrows, got.ncols) == (R.nrows, R.ncols)
    assert set(got.content) == set(R.content), (
        f"patterns differ: extra={set(got.content) - set(R.content)}, "
        f"missing={set(R.content) - set(got.content)}"
    )
    for k, v in R.content.items():
        if approx:
            assert got.content[k] == pytest.approx(v, rel=1e-12, abs=1e-12), k
        else:
            assert got.content[k] == v, (k, got.content[k], v)


def assert_vector_equals_ref(v: grb.Vector, R: RefVector, approx=False):
    got = RefVector.from_grb(v)
    assert got.size == R.size
    assert set(got.content) == set(R.content), (
        f"patterns differ: extra={set(got.content) - set(R.content)}, "
        f"missing={set(R.content) - set(got.content)}"
    )
    for k, val in R.content.items():
        if approx:
            assert got.content[k] == pytest.approx(val, rel=1e-12, abs=1e-12), k
        else:
            assert got.content[k] == val, (k, got.content[k], val)
