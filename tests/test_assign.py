"""``assign`` (Table II row 11; Fig. 3 lines 61 and 77)."""

import numpy as np
import pytest

import repro as grb
from repro.ops import binary

from tests.conftest import random_matrix, random_vector


class TestMatrixAssign:
    def test_region_replaced_without_accum(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        A = grb.Matrix.from_coo(grb.INT64, 2, 1, [0], [0], [9])
        grb.matrix_assign(C, None, None, A, [0, 1], [1])
        # region (rows 0,1 × col 1): C(0,1)=9, C(1,1) deleted (A has no (1,0))
        assert {(i, j): int(v) for i, j, v in C} == {
            (0, 0): 1, (1, 0): 3, (0, 1): 9,
        }

    def test_region_merge_with_accum(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        A = grb.Matrix.from_coo(grb.INT64, 2, 1, [0], [0], [9])
        grb.matrix_assign(C, None, binary.PLUS[grb.INT64], A, [0, 1], [1])
        # accum: C(0,1) = 2+9; C(1,1) survives
        assert C.to_dense(0).tolist() == [[1, 11], [3, 4]]

    def test_outside_region_untouched(self, rng):
        C = random_matrix(rng, 6, 6, 0.5)
        before = {(i, j): int(v) for i, j, v in C}
        A = grb.Matrix(grb.INT64, 2, 2)  # empty source clears the region
        grb.matrix_assign(C, None, None, A, [1, 2], [3, 4])
        after = {(i, j): int(v) for i, j, v in C}
        region = {(i, j) for i in (1, 2) for j in (3, 4)}
        for pos, v in before.items():
            if pos not in region:
                assert after[pos] == v
        assert not (set(after) & region)

    def test_transposed_source(self):
        C = grb.Matrix(grb.INT64, 2, 3)
        A = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4], [5, 6]])
        grb.matrix_assign(C, None, None, A, [0, 1], [0, 1, 2], grb.DESC_T0)
        assert (C.to_dense(0) == A.to_dense(0).T).all()

    def test_duplicate_region_indices_rejected(self):
        C = grb.Matrix(grb.INT64, 3, 3)
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.InvalidValue):
            grb.matrix_assign(C, None, None, A, [1, 1], [0, 2])

    def test_source_shape_mismatch(self):
        C = grb.Matrix(grb.INT64, 3, 3)
        A = grb.Matrix(grb.INT64, 2, 2)
        with pytest.raises(grb.DimensionMismatch):
            grb.matrix_assign(C, None, None, A, [0], [1, 2])


class TestMatrixAssignScalar:
    def test_fig3_line61_dense_fill(self):
        # bcu filled with 1.0 over ALL × ALL "to avoid sparsity issues"
        bcu = grb.Matrix(grb.FP32, 3, 2)
        grb.matrix_assign_scalar(bcu, None, None, 1.0, grb.ALL, grb.ALL)
        assert bcu.nvals() == 6
        assert (bcu.to_dense(0) == 1.0).all()

    def test_partial_region_fill(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        grb.matrix_assign_scalar(C, None, None, 7, [1], [0, 1])
        assert C.to_dense(0).tolist() == [[1, 2], [7, 7]]

    def test_scalar_accum(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        grb.matrix_assign_scalar(
            C, None, binary.TIMES[grb.INT64], 10, grb.ALL, grb.ALL
        )
        assert C.to_dense(0).tolist() == [[10, 20], [30, 40]]

    def test_masked_fill(self):
        C = grb.Matrix(grb.INT64, 2, 2)
        M = grb.Matrix.from_coo(grb.BOOL, 2, 2, [0, 1], [0, 1], [True, True])
        grb.matrix_assign_scalar(C, M, None, 5, grb.ALL, grb.ALL)
        assert {(i, j): int(v) for i, j, v in C} == {(0, 0): 5, (1, 1): 5}


class TestVectorAssign:
    def test_vector_into_region(self):
        w = grb.Vector.from_coo(grb.INT64, 5, [0, 2, 4], [1, 2, 3])
        u = grb.Vector.from_coo(grb.INT64, 2, [0], [9])
        grb.vector_assign(w, None, None, u, [2, 4])
        # region {2,4}: w(2)=9 (u(0)), w(4) deleted (u(1) absent)
        assert {i: int(v) for i, v in w} == {0: 1, 2: 9}

    def test_fig3_line77_fill(self):
        delta = grb.Vector(grb.FP32, 4)
        grb.vector_assign_scalar(delta, None, None, -3.0, grb.ALL)
        assert delta.to_dense(0).tolist() == [-3.0] * 4

    def test_scalar_partial(self):
        w = grb.Vector.from_coo(grb.INT64, 4, [0, 1], [5, 6])
        grb.vector_assign_scalar(w, None, None, 0, [1, 3])
        assert {i: int(v) for i, v in w} == {0: 5, 1: 0, 3: 0}

    def test_size_mismatch(self):
        w = grb.Vector(grb.INT64, 5)
        u = grb.Vector(grb.INT64, 3)
        with pytest.raises(grb.DimensionMismatch):
            grb.vector_assign(w, None, None, u, [0, 1])

    def test_masked_replace_deletes_outside(self, rng):
        w = random_vector(rng, 8, 0.8)
        m = grb.Vector.from_coo(grb.BOOL, 8, [1, 3], [True, True])
        d = grb.Descriptor().set(grb.OUTP, grb.REPLACE)
        grb.vector_assign_scalar(w, m, None, 42, grb.ALL, d)
        # replace + mask: only masked positions survive
        assert {i: int(v) for i, v in w} == {1: 42, 3: 42}


class TestRowColAssign:
    def test_row_assign(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2, 3], [4, 5, 6]])
        u = grb.Vector.from_coo(grb.INT64, 3, [0, 2], [7, 9])
        grb.row_assign(C, None, None, u, 1, grb.ALL)
        # row 1 region-replaced: (1,1) deleted, (1,0)=7, (1,2)=9
        assert {(i, j): int(v) for i, j, v in C} == {
            (0, 0): 1, (0, 1): 2, (0, 2): 3, (1, 0): 7, (1, 2): 9,
        }

    def test_col_assign_with_accum(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2], [3, 4]])
        u = grb.Vector.from_coo(grb.INT64, 2, [0, 1], [10, 20])
        grb.col_assign(C, None, binary.PLUS[grb.INT64], u, grb.ALL, 0)
        assert C.to_dense(0).tolist() == [[11, 2], [23, 4]]

    def test_row_assign_mask_within_row(self):
        C = grb.Matrix.from_dense(grb.INT64, [[1, 2, 3]])
        u = grb.Vector.from_coo(grb.INT64, 3, [0, 1, 2], [7, 8, 9])
        m = grb.Vector.from_coo(grb.BOOL, 3, [1], [True])
        grb.row_assign(C, m, None, u, 0, grb.ALL)
        # only the masked column within the row is written
        assert C.to_dense(0).tolist() == [[1, 8, 3]]

    def test_row_out_of_range(self):
        C = grb.Matrix(grb.INT64, 2, 2)
        u = grb.Vector(grb.INT64, 2)
        with pytest.raises(grb.InvalidValue):
            grb.row_assign(C, None, None, u, 5, grb.ALL)


class TestGenericDispatch:
    def test_dispatch_variants(self, rng):
        C = grb.Matrix(grb.INT64, 3, 3)
        A = random_matrix(rng, 3, 3, 0.5)
        grb.assign(C, None, None, A, grb.ALL, grb.ALL)
        assert (C.to_dense(0) == A.to_dense(0)).all()

        grb.assign(C, None, None, 5, grb.ALL, grb.ALL)  # scalar
        assert (C.to_dense(0) == 5).all()

        w = grb.Vector(grb.INT64, 3)
        grb.assign(w, None, None, -1, grb.ALL)
        assert (w.to_dense(0) == -1).all()

        u = grb.Vector.from_coo(grb.INT64, 3, [0], [3])
        grb.assign(w, None, None, u, grb.ALL)
        assert {i: int(v) for i, v in w} == {0: 3}

        grb.assign(C, None, None, u, 1, grb.ALL)  # row assign
        got = {(i, j): int(v) for i, j, v in C if i == 1}
        assert got == {(1, 0): 3}
