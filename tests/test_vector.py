"""Vector collection semantics (paper section III-A)."""

import numpy as np
import pytest

import repro as grb
from repro.ops import binary


class TestConstruction:
    def test_vector_new(self):
        v = grb.vector_new(grb.FP32, 10)
        assert v.size == 10 and v.nvals() == 0
        assert v.type is grb.FP32

    def test_size_must_be_positive(self):
        # paper: N > 0
        with pytest.raises(grb.InvalidValue):
            grb.Vector(grb.FP32, 0)
        with pytest.raises(grb.InvalidValue):
            grb.Vector(grb.FP32, -3)

    def test_null_domain(self):
        with pytest.raises(grb.NullPointer):
            grb.Vector(None, 5)

    def test_non_type_domain(self):
        with pytest.raises(grb.InvalidValue):
            grb.Vector("GrB_FP32", 5)


class TestBuild:
    def test_build_basic(self):
        v = grb.Vector(grb.INT32, 10)
        v.build([5, 1, 8], [10, 20, 30])
        idx, vals = v.extract_tuples()
        assert idx.tolist() == [1, 5, 8]
        assert vals.tolist() == [20, 10, 30]

    def test_build_with_dup_combines(self):
        # Fig. 3 line 28 passes GrB_PLUS_INT32 as dup
        v = grb.Vector(grb.INT32, 10)
        v.build([3, 3, 3], [1, 2, 4], binary.PLUS[grb.INT32])
        assert v.extract_element(3) == 7

    def test_build_duplicates_without_dup_error(self):
        v = grb.Vector(grb.INT32, 10)
        with pytest.raises(grb.InvalidValue):
            v.build([3, 3], [1, 2])

    def test_build_into_nonempty_is_output_not_empty(self):
        v = grb.Vector(grb.INT32, 10)
        v.build([1], [1])
        with pytest.raises(grb.OutputNotEmpty):
            v.build([2], [2])

    def test_build_index_out_of_range(self):
        v = grb.Vector(grb.INT32, 10)
        with pytest.raises(grb.IndexOutOfBounds):
            v.build([10], [1])
        with pytest.raises(grb.IndexOutOfBounds):
            v.build([-1], [1])

    def test_build_length_mismatch(self):
        v = grb.Vector(grb.INT32, 10)
        with pytest.raises(grb.DimensionMismatch):
            v.build([1, 2], [1])

    def test_build_scalar_broadcast(self):
        v = grb.Vector(grb.INT32, 5)
        v.build([0, 2, 4], 7)
        assert v.to_dense(0).tolist() == [7, 0, 7, 0, 7]

    def test_build_casts_values(self):
        v = grb.Vector(grb.INT8, 5)
        v.build([0], [300])  # wraps mod 256
        assert v.extract_element(0) == 44


class TestElementAccess:
    def test_set_then_extract(self):
        v = grb.Vector(grb.FP64, 4)
        v.set_element(2, 1.5)
        assert v.extract_element(2) == 1.5

    def test_set_overwrites(self):
        v = grb.Vector(grb.INT32, 4)
        v.set_element(1, 5)
        v.set_element(1, 9)
        assert v.extract_element(1) == 9
        assert v.nvals() == 1

    def test_extract_missing_is_no_value(self):
        v = grb.Vector(grb.INT32, 4)
        with pytest.raises(grb.NoValue):
            v.extract_element(0)

    def test_undefined_not_zero(self):
        # paper: elements not in the content are UNDEFINED, not 0
        v = grb.Vector(grb.INT32, 4)
        v.set_element(0, 0)  # an explicit stored zero
        assert v.nvals() == 1
        assert v.extract_element(0) == 0
        with pytest.raises(grb.NoValue):
            v.extract_element(1)

    def test_remove_element(self):
        v = grb.Vector(grb.INT32, 4)
        v.set_element(1, 5)
        v.remove_element(1)
        assert v.nvals() == 0
        v.remove_element(1)  # removing absent is a no-op
        assert v.nvals() == 0

    def test_index_bounds(self):
        v = grb.Vector(grb.INT32, 4)
        with pytest.raises(grb.IndexOutOfBounds):
            v.set_element(4, 1)
        with pytest.raises(grb.IndexOutOfBounds):
            v.extract_element(-1)
        with pytest.raises(grb.IndexOutOfBounds):
            v.remove_element(99)

    def test_contains_and_iter(self):
        v = grb.Vector.from_coo(grb.INT32, 6, [1, 4], [10, 40])
        assert 1 in v and 4 in v and 2 not in v
        assert {i: int(x) for i, x in v} == {1: 10, 4: 40}


class TestLifecycle:
    def test_clear_keeps_size(self):
        v = grb.Vector.from_coo(grb.INT32, 6, [1, 4], [10, 40])
        v.clear()
        assert v.size == 6 and v.nvals() == 0

    def test_dup_is_independent(self):
        v = grb.Vector.from_coo(grb.INT32, 6, [1], [10])
        w = v.dup()
        w.set_element(1, 99)
        assert v.extract_element(1) == 10
        assert w.extract_element(1) == 99

    def test_free_makes_unusable(self):
        v = grb.Vector(grb.INT32, 4)
        v.free()
        with pytest.raises(grb.UninitializedObject):
            v.nvals()
        with pytest.raises(grb.UninitializedObject):
            v.set_element(0, 1)


class TestDense:
    def test_to_dense_requires_fill(self):
        v = grb.Vector.from_coo(grb.FP64, 4, [1], [2.5])
        assert v.to_dense(0.0).tolist() == [0.0, 2.5, 0.0, 0.0]
        assert v.to_dense(np.inf).tolist() == [np.inf, 2.5, np.inf, np.inf]

    def test_from_dense_drops_implied_zero(self):
        v = grb.Vector.from_dense(grb.INT32, [0, 5, 0, 7])
        assert v.nvals() == 2
        idx, vals = v.extract_tuples()
        assert idx.tolist() == [1, 3] and vals.tolist() == [5, 7]

    def test_from_dense_custom_implied_zero(self):
        v = grb.Vector.from_dense(grb.FP64, [np.inf, 3.0], implied_zero=np.inf)
        assert v.nvals() == 1


class TestUDTVector:
    def test_frozenset_vector(self):
        T = grb.powerset_type()
        v = grb.Vector(T, 3)
        v.build([0, 2], [frozenset({1, 2}), frozenset({3})])
        assert v.extract_element(0) == frozenset({1, 2})

    def test_udt_wrong_class_rejected(self):
        T = grb.powerset_type()
        v = grb.Vector(T, 3)
        with pytest.raises(grb.InvalidValue):
            v.build([0], [{1, 2}])  # a set, not a frozenset
