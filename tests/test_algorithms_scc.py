"""Strongly connected components and topological sorting."""

import networkx as nx
import numpy as np
import pytest

import repro as grb
from repro.algorithms import (
    is_dag,
    strongly_connected_components,
    topological_sort,
)
from repro.io import cycle_graph, erdos_renyi, from_networkx, path_graph, to_networkx

@pytest.fixture(autouse=True)
def _run_in_both_modes(exec_mode):
    """Every test here runs under blocking AND nonblocking+planner mode."""


class TestSCC:
    @pytest.mark.parametrize("seed,m", [(1, 100), (2, 200), (3, 60)])
    def test_matches_networkx(self, seed, m):
        G = erdos_renyi(50, m, seed=seed)
        labels = strongly_connected_components(G)
        nxg = to_networkx(G, weighted=False)
        want = {}
        for comp in nx.strongly_connected_components(nxg):
            mmin = min(comp)
            for v in comp:
                want[v] = mmin
        assert all(labels[v] == want[v] for v in range(50))

    def test_cycle_is_one_scc(self):
        C = cycle_graph(7)
        labels = strongly_connected_components(C)
        assert (labels == 0).all()

    def test_path_is_all_singletons(self):
        P = path_graph(6)
        labels = strongly_connected_components(P)
        assert labels.tolist() == list(range(6))

    def test_two_cycles_joined_one_way(self):
        # cycle {0,1,2} -> cycle {3,4,5}: two SCCs
        A = grb.Matrix.from_coo(
            grb.BOOL, 6, 6,
            [0, 1, 2, 2, 3, 4, 5],
            [1, 2, 0, 3, 4, 5, 3],
            [True] * 7,
        )
        labels = strongly_connected_components(A)
        assert labels.tolist() == [0, 0, 0, 3, 3, 3]

    def test_labels_are_min_members(self):
        G = erdos_renyi(40, 160, seed=9)
        labels = strongly_connected_components(G)
        for lab in set(labels.tolist()):
            members = np.nonzero(labels == lab)[0]
            assert lab == members.min()


class TestTopologicalSort:
    def test_valid_order_on_random_dag(self):
        dag = nx.gn_graph(60, seed=8)  # edges child -> parent: a DAG
        A = from_networkx(dag)
        order = topological_sort(A)
        assert sorted(order.tolist()) == list(range(60))
        pos = {int(v): i for i, v in enumerate(order)}
        for u, v in dag.edges():
            assert pos[u] < pos[v]

    def test_path_order(self):
        P = path_graph(5)
        assert topological_sort(P).tolist() == [0, 1, 2, 3, 4]

    def test_cycle_rejected(self):
        with pytest.raises(grb.InvalidValue):
            topological_sort(cycle_graph(4))

    def test_layered_ties_sorted_by_index(self):
        # two independent edges: layer {0, 2} then {1, 3}
        A = grb.Matrix.from_coo(
            grb.BOOL, 4, 4, [0, 2], [1, 3], [True, True]
        )
        assert topological_sort(A).tolist() == [0, 2, 1, 3]


class TestIsDag:
    def test_dag_true(self):
        assert is_dag(path_graph(4))

    def test_cycle_false(self):
        assert not is_dag(cycle_graph(3))

    def test_self_loop_false(self):
        A = grb.Matrix.from_coo(grb.BOOL, 2, 2, [0], [0], [True])
        assert not is_dag(A)
