#!/usr/bin/env python
"""Global graph metrics from semiring closures.

Transitive closure (OR-AND repeated squaring), all-pairs shortest paths
(min-plus repeated squaring), eccentricity/diameter/radius, k-core
decomposition, and a truss profile — section II's "change the semiring,
reuse the operation" idea stretched across a whole metrics dashboard.

Run:  python examples/graph_metrics.py [n] [m]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import (
    apsp,
    connected_components,
    core_numbers,
    diameter,
    eccentricity,
    k_truss,
    radius,
    transitive_closure,
)
from repro.io import erdos_renyi


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 480
    G = erdos_renyi(n, m, seed=13)
    # symmetrize for the undirected metrics
    U = grb.Matrix(grb.BOOL, n, n)
    grb.ewise_add(U, None, None, grb.LOR, G, G, grb.DESC_T1)
    print(f"graph: {n} vertices, {G.nvals()} arcs "
          f"({U.nvals() // 2} undirected edges)")

    t0 = time.perf_counter()
    R = transitive_closure(G)
    reach = R.nvals()
    print(f"\nreachability (xor one OR-AND closure, "
          f"{(time.perf_counter() - t0) * 1e3:.0f} ms):")
    print(f"  reachable ordered pairs: {reach} of {n * (n - 1)} "
          f"({reach / (n * (n - 1)):.1%})")

    t0 = time.perf_counter()
    D = apsp(U)
    print(f"\nAPSP over min-plus ({(time.perf_counter() - t0) * 1e3:.0f} ms):")
    finite = np.isfinite(D) & (D > 0)
    print(f"  mean shortest path: {D[finite].mean():.2f}")
    print(f"  diameter={diameter(U):.0f}  radius={radius(U):.0f}")
    ecc = eccentricity(U)
    centers = np.nonzero(ecc == ecc.min())[0]
    print(f"  graph center: vertices {centers[:8].tolist()}")

    comps = connected_components(U)
    print(f"\ncomponents: {len(np.unique(comps))}")

    cores = core_numbers(U)
    print("core-number histogram:")
    for k in range(cores.max() + 1):
        cnt = int((cores == k).sum())
        if cnt:
            print(f"  {k}-core members: {'#' * min(60, cnt)} {cnt}")

    print("\ntruss profile:")
    for k in (3, 4, 5):
        T = k_truss(U, k)
        print(f"  {k}-truss: {T.nvals() // 2} edges")
        T.free()


if __name__ == "__main__":
    main()
