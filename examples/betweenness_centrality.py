#!/usr/bin/env python
"""Betweenness centrality — the paper's running example (section VII).

Runs Fig. 3's ``BC_update`` on an RMAT power-law digraph, batched over all
sources, and cross-checks the result against the classical per-source
Brandes algorithm.  Prints the top-central vertices and the timing of the
GraphBLAS formulation vs the plain-Python baseline.

Run:  python examples/betweenness_centrality.py [scale] [edge_factor]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import bc_update, betweenness_centrality, brandes_baseline
from repro.io import rmat


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    edge_factor = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    A = rmat(scale, edge_factor, seed=7, domain=grb.INT32)
    n = A.nrows
    print(f"RMAT graph: {n} vertices, {A.nvals()} edges")

    # --- one batch, exactly the Fig. 3 call -----------------------------
    batch = np.arange(min(16, n))
    t0 = time.perf_counter()
    delta = bc_update(A, batch)
    t_batch = time.perf_counter() - t0
    print(f"\nBC_update on a {len(batch)}-source batch: {t_batch * 1e3:.1f} ms")
    idx, vals = delta.extract_tuples()
    print(f"  contributions stored for {len(idx)} of {n} vertices")

    # --- full BC: sum over batches ---------------------------------------
    t0 = time.perf_counter()
    bc = betweenness_centrality(A, batch_size=32)
    t_grb = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline = brandes_baseline(A)
    t_base = time.perf_counter() - t0

    err = np.abs(bc - baseline).max()
    print(f"\nfull BC over all {n} sources:")
    print(f"  GraphBLAS batched Brandes : {t_grb:8.3f} s")
    print(f"  per-source Brandes (pure) : {t_base:8.3f} s")
    print(f"  max |difference|          : {err:.2e} (FP32 accumulation)")

    top = np.argsort(bc)[::-1][:10]
    print("\ntop-10 central vertices:")
    for v in top:
        print(f"  vertex {v:5d}  BC = {bc[v]:12.1f}")


if __name__ == "__main__":
    main()
