#!/usr/bin/env python
"""Social-network analytics: triangles, clustering, and an independent set.

A symmetric "friendship" graph (RMAT pattern, symmetrized with eWiseAdd —
itself a GraphBLAS operation) is analysed with three classic masked-semiring
workloads: Sandia-style masked-SpGEMM triangle counting, per-vertex
clustering coefficients, and Luby's maximal independent set.

Run:  python examples/social_triangles.py [scale]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import maximal_independent_set, triangle_count
from repro.io import rmat


def symmetrize(A: grb.Matrix) -> grb.Matrix:
    """B = A ∨ Aᵀ: one eWiseAdd with a transpose descriptor."""
    B = grb.Matrix(grb.BOOL, A.nrows, A.ncols)
    grb.ewise_add(B, None, None, grb.LOR, A, A, grb.DESC_T1)
    # drop self-loops with select(OFFDIAG)
    C = grb.Matrix(grb.BOOL, A.nrows, A.ncols)
    grb.select(C, None, None, grb.ops.index_unary.OFFDIAG, B, 0)
    return C


def per_vertex_triangles(A: grb.Matrix) -> np.ndarray:
    """t(v) = number of triangles through v, via C⟨A⟩ = A +.× A row sums."""
    n = A.nrows
    C = grb.Matrix(grb.INT64, n, n)
    grb.mxm(C, A, None, grb.PLUS_PAIR[grb.INT64], A, A, grb.DESC_R)
    w = grb.Vector(grb.INT64, n)
    grb.reduce_to_vector(w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), C)
    return w.to_dense(0) // 2  # each triangle counted twice per vertex


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    A = symmetrize(rmat(scale, 8, seed=21))
    n, m = A.nrows, A.nvals() // 2
    print(f"friendship graph: {n} people, {m} friendships")

    t0 = time.perf_counter()
    tri = triangle_count(A)
    print(f"\ntriangles: {tri}  ({(time.perf_counter() - t0) * 1e3:.1f} ms)")

    tv = per_vertex_triangles(A)
    deg = np.diff(A.csr().indptr)
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(deg >= 2, 2.0 * tv / (deg * (deg - 1.0)), 0.0)
    print(f"global check: per-vertex triangle sum / 3 = {tv.sum() // 3}")
    print(f"mean clustering coefficient: {cc.mean():.4f}")

    busiest = np.argsort(tv)[::-1][:5]
    print("\nmost triangulated vertices:")
    for v in busiest:
        print(f"  vertex {v:5d}: {tv[v]:6d} triangles, degree {deg[v]}")

    t0 = time.perf_counter()
    mis = maximal_independent_set(A, seed=5)
    print(
        f"\nmaximal independent set: {len(mis)} vertices "
        f"({(time.perf_counter() - t0) * 1e3:.1f} ms)"
    )
    # verify independence with one masked reduction
    sel = grb.Vector.from_coo(grb.BOOL, n, mis, np.ones(len(mis), bool))
    nbr = grb.Vector(grb.BOOL, n)
    grb.vxm(nbr, sel, None, grb.LOR_LAND[grb.BOOL], sel, A, None)
    conflicts = [i for i, v in nbr if v and i in set(int(x) for x in mis)]
    print(f"independence verified: {'yes' if not conflicts else conflicts}")


if __name__ == "__main__":
    main()
