#!/usr/bin/env python
"""Quickstart: the GraphBLAS objects and operations in five minutes.

Covers the paper's core concepts in order: collections, semirings, a
masked matrix-vector product (one BFS step), descriptors, accumulators,
and the blocking vs nonblocking execution model.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as grb


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Collections: a small directed graph as an adjacency matrix.
    #    Stored elements ARE the edges; everything else is *undefined*,
    #    not zero (section III-A of the paper).
    #
    #        0 -> 1 -> 2 -> 3
    #        \________^
    n = 4
    A = grb.Matrix.from_coo(
        grb.INT32, n, n,
        rows=[0, 1, 2, 0],
        cols=[1, 2, 3, 2],
        values=[1, 1, 1, 1],
    )
    print("adjacency matrix:", A)
    print(A.to_dense(0))

    # ------------------------------------------------------------------
    # 2. Algebra: operations run over a semiring you choose per call.
    #    The arithmetic one counts paths; min-plus computes distances —
    #    same matrix, different algebra (Table I).
    plus_times = grb.PLUS_TIMES[grb.INT32]

    paths2 = grb.Matrix(grb.INT32, n, n)
    grb.mxm(paths2, None, None, plus_times, A, A)
    print("\n2-hop path counts (A +.* A):")
    print(paths2.to_dense(0))

    min_plus = grb.semiring("GrB_MIN_PLUS_SEMIRING_FP64")
    dist2 = grb.Matrix(grb.FP64, n, n)
    grb.mxm(dist2, None, None, min_plus, A, A)
    print("2-hop distances (A min.+ A), inf = unreachable:")
    print(dist2.to_dense(np.inf))

    # ------------------------------------------------------------------
    # 3. A BFS step: frontier vector pushed through the graph, with the
    #    visited set as a *complemented mask* so discovered vertices are
    #    pruned — the exact trick Fig. 3's forward sweep uses.
    visited = grb.Vector.from_coo(grb.BOOL, n, [0], [True])
    frontier = grb.Vector.from_coo(grb.BOOL, n, [0], [True])

    desc = grb.Descriptor()
    desc.set(grb.MASK, grb.SCMP)        # structural complement of the mask
    desc.set(grb.MASK, grb.STRUCTURE)
    desc.set(grb.OUTP, grb.REPLACE)     # clear output before writing

    step = 0
    while frontier.nvals() > 0:
        print(f"BFS level {step}: frontier = {[i for i, _ in frontier]}")
        # frontier<¬visited> = frontier ∨.∧ A
        grb.vxm(frontier, visited, None, grb.LOR_LAND[grb.BOOL], frontier, A, desc)
        # visited |= frontier
        grb.ewise_add(visited, None, None, grb.LOR, visited, frontier)
        step += 1

    # ------------------------------------------------------------------
    # 4. Accumulators: C ⊙= result merges instead of overwriting.
    total = grb.Vector(grb.INT32, n)
    grb.vector_assign_scalar(total, None, None, 100, grb.ALL)
    ones = grb.Vector.from_coo(grb.INT32, n, range(n), [1] * n)
    # total += A +.* ones   (row degrees accumulated onto 100)
    grb.mxv(total, None, grb.PLUS[grb.INT32], plus_times, A, ones)
    print("\n100 + out-degree per vertex:", total.to_dense(0))

    # ------------------------------------------------------------------
    # 5. Execution model: nonblocking mode defers work until wait() or a
    #    method that exports values (section IV).
    grb.init(grb.Mode.NONBLOCKING)
    B = grb.Matrix(grb.INT32, n, n)
    grb.mxm(B, None, None, plus_times, A, A)
    print("\nnonblocking: queued ops before wait:", grb.queue_stats()["enqueued"])
    grb.wait()
    print("after wait:", grb.queue_stats())
    print("result computed lazily:\n", B.to_dense(0))
    grb.finalize()


if __name__ == "__main__":
    main()
