#!/usr/bin/env python
"""Community detection with Markov clustering (MCL).

Builds a planted-partition graph (dense communities, sparse bridges) and
recovers the communities with MCL — expansion is semiring ``mxm``,
inflation is ``apply`` with a bound power operator, normalization uses
``reduce`` + ``Matrix.diag``.  Reports the confusion against the planted
truth and the color classes of a greedy coloring for comparison.

Run:  python examples/mcl_communities.py [communities] [size]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import greedy_coloring, markov_clustering
from repro.io import from_networkx


def planted_partition(k: int, size: int, p_in=0.6, p_out=0.01, seed=5):
    import networkx as nx

    sizes = [size] * k
    G = nx.random_partition_graph(sizes, p_in, p_out, seed=seed)
    truth = np.empty(k * size, dtype=int)
    for c, block in enumerate(G.graph["partition"]):
        for v in block:
            truth[v] = c
    return from_networkx(G), truth


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    A, truth = planted_partition(k, size)
    n = A.nrows
    print(f"planted-partition graph: {k} communities x {size} vertices, "
          f"{A.nvals() // 2} edges")

    t0 = time.perf_counter()
    labels = markov_clustering(A, inflation=2.0)
    print(f"\nMCL converged in {time.perf_counter() - t0:.2f} s; "
          f"found {len(set(labels.tolist()))} clusters")

    # purity: fraction of vertices whose cluster's majority truth matches
    correct = 0
    for lab in set(labels.tolist()):
        members = np.nonzero(labels == lab)[0]
        counts = np.bincount(truth[members], minlength=k)
        correct += counts.max()
    print(f"cluster purity: {correct / n:.2%}")

    for lab in sorted(set(labels.tolist()))[:6]:
        members = np.nonzero(labels == lab)[0]
        tc = np.bincount(truth[members], minlength=k)
        print(f"  cluster {lab:3d}: {len(members):3d} vertices, "
              f"truth histogram {tc.tolist()}")

    colors = greedy_coloring(A, seed=1)
    print(f"\ngreedy coloring for contrast: {colors.max() + 1} colors "
          "(proper coloring, not communities)")
    rows, cols, _ = A.extract_tuples()
    assert all(colors[i] != colors[j] for i, j in zip(rows, cols))
    print("coloring verified proper")


if __name__ == "__main__":
    main()
