#!/usr/bin/env python
"""Fig. 3 of the paper, transliterated through the C-style shim.

Each statement below corresponds to the same-numbered line of the paper's
listing; the ``GrB_*`` functions return ``GrB_Info`` codes and use ``Ref``
boxes for C's output pointers, so the control flow (including the omitted
error checks the paper mentions) reads exactly like the C original.

Run:  python examples/bc_c_style.py
"""

import numpy as np

from repro.capi import *  # noqa: F401,F403 — the point is the C namespace
from repro.capi import Ref
from repro.ops import binary, unary
import repro.io


def BC_update(delta: Ref, A, s, nsver) -> "Info":
    """GrB_Info BC_update(GrB_Vector *delta, GrB_Matrix A, GrB_Index *s,
    GrB_Index nsver)  — Fig. 3 line 3."""
    n = Ref()
    GrB_Matrix_nrows(n, A)                                  # l.6
    n = n.value
    GrB_Vector_new(delta, GrB_FP32, n)                      # l.7

    Int32Add = Ref()                                        # l.9-10
    GrB_Monoid_new(Int32Add, GrB_INT32, binary.PLUS[GrB_INT32], 0)
    Int32AddMul = Ref()                                     # l.11-12
    GrB_Semiring_new(Int32AddMul, Int32Add.value, binary.TIMES[GrB_INT32])

    desc_tsr = Ref()                                        # l.14-18
    GrB_Descriptor_new(desc_tsr)
    GrB_Descriptor_set(desc_tsr.value, GrB_INP0, GrB_TRAN)
    GrB_Descriptor_set(desc_tsr.value, GrB_MASK, GrB_SCMP)
    GrB_Descriptor_set(desc_tsr.value, GrB_OUTP, GrB_REPLACE)

    i_nsver = np.arange(nsver)                              # l.20-25
    ones = np.ones(nsver, dtype=np.int64)

    numsp = Ref()                                           # l.26-28
    GrB_Matrix_new(numsp, GrB_INT32, n, nsver)
    GrB_Matrix_build(
        numsp.value, s, i_nsver, ones, nsver, binary.PLUS[GrB_INT32]
    )

    frontier = Ref()                                        # l.31-33
    GrB_Matrix_new(frontier, GrB_INT32, n, nsver)
    GrB_extract(
        frontier.value, numsp.value, GrB_NULL, A,
        GrB_ALL, s, desc_tsr.value,
    )

    sigmas = []                                             # l.36
    d = 0                                                   # l.37
    while True:                                             # l.39: do {...}
        sigma_d = Ref()                                     # l.40
        GrB_Matrix_new(sigma_d, GrB_BOOL, n, nsver)
        GrB_apply(                                          # l.41
            sigma_d.value, GrB_NULL, GrB_NULL,
            unary.IDENTITY[GrB_BOOL], frontier.value, GrB_NULL,
        )
        sigmas.append(sigma_d.value)
        GrB_eWiseAdd(                                       # l.42
            numsp.value, GrB_NULL, GrB_NULL, Int32Add.value,
            numsp.value, frontier.value, GrB_NULL,
        )
        GrB_mxm(                                            # l.43
            frontier.value, numsp.value, GrB_NULL, Int32AddMul.value,
            A, frontier.value, desc_tsr.value,
        )
        nvals = Ref()                                       # l.44
        GrB_Matrix_nvals(nvals, frontier.value)
        d += 1                                              # l.45
        if not nvals.value:                                 # l.46
            break

    FP32Add = Ref()                                         # l.48-49
    GrB_Monoid_new(FP32Add, GrB_FP32, binary.PLUS[GrB_FP32], 0.0)
    FP32Mul = Ref()                                         # l.50-51
    GrB_Monoid_new(FP32Mul, GrB_FP32, binary.TIMES[GrB_FP32], 1.0)
    FP32AddMul = Ref()                                      # l.52-53
    GrB_Semiring_new(FP32AddMul, FP32Add.value, binary.TIMES[GrB_FP32])

    nspinv = Ref()                                          # l.55-57
    GrB_Matrix_new(nspinv, GrB_FP32, n, nsver)
    GrB_apply(
        nspinv.value, GrB_NULL, GrB_NULL,
        unary.MINV[GrB_FP32], numsp.value, GrB_NULL,
    )

    bcu = Ref()                                             # l.59-61
    GrB_Matrix_new(bcu, GrB_FP32, n, nsver)
    GrB_assign(
        bcu.value, GrB_NULL, GrB_NULL, 1.0, GrB_ALL, GrB_ALL, GrB_NULL
    )

    desc_r = Ref()                                          # l.63-65
    GrB_Descriptor_new(desc_r)
    GrB_Descriptor_set(desc_r.value, GrB_OUTP, GrB_REPLACE)

    w = Ref()                                               # l.67-68
    GrB_Matrix_new(w, GrB_FP32, n, nsver)
    for i in range(d - 1, 0, -1):                           # l.69
        GrB_eWiseMult(                                      # l.70
            w.value, sigmas[i], GrB_NULL, binary.TIMES[GrB_FP32],
            bcu.value, nspinv.value, desc_r.value,
        )
        GrB_mxm(                                            # l.73
            w.value, sigmas[i - 1], GrB_NULL, FP32AddMul.value,
            A, w.value, desc_r.value,
        )
        GrB_eWiseMult(                                      # l.74
            bcu.value, GrB_NULL, binary.PLUS[GrB_FP32],
            binary.TIMES[GrB_FP32], w.value, numsp.value, GrB_NULL,
        )

    GrB_assign(                                             # l.77
        delta.value, GrB_NULL, GrB_NULL, -float(nsver), GrB_ALL, GrB_NULL
    )
    GrB_reduce(                                             # l.78
        delta.value, GrB_NULL, binary.PLUS[GrB_FP32],
        binary.PLUS[GrB_FP32], bcu.value, GrB_NULL,
    )

    for sig in sigmas:                                      # l.80
        GrB_free(sig)
    GrB_free_all(                                           # l.81
        numsp.value, frontier.value, nspinv.value, bcu.value, w.value,
        Int32AddMul.value, Int32Add.value, FP32AddMul.value,
        FP32Add.value, FP32Mul.value,
    )
    return GrB_SUCCESS                                      # l.83


def main() -> None:
    A = repro.io.rmat(7, 8, seed=7, domain=GrB_INT32)
    s = np.arange(8)
    delta = Ref()
    info = BC_update(delta, A, s, len(s))
    assert info == GrB_SUCCESS
    print("BC_update returned", info.name)

    from repro.algorithms import brandes_baseline

    want = brandes_baseline(A, sources=s)
    got = delta.value.to_dense(0.0)
    print("max |difference| vs classical Brandes:",
          float(np.abs(got - want).max()))
    top = np.argsort(got)[::-1][:5]
    print("top contributors:", ", ".join(f"{v}({got[v]:.1f})" for v in top))


if __name__ == "__main__":
    main()
