#!/usr/bin/env python
"""Web-graph ranking: PageRank as repeated semiring mat-vec.

An RMAT digraph stands in for a web crawl.  The power iteration is built
entirely from GraphBLAS primitives (row-reduce for out-degrees, eWiseMult
for scaling, vxm over +.× for the push), and the result is cross-checked
against networkx when available.

Run:  python examples/pagerank_web.py [scale]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import pagerank
from repro.io import rmat, to_networkx


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    A = rmat(scale, 8, seed=12)
    n = A.nrows
    deg = np.diff(A.csr().indptr)
    print(f"web graph: {n} pages, {A.nvals()} links, "
          f"{int((deg == 0).sum())} dangling pages")

    t0 = time.perf_counter()
    pr = pagerank(A, damping=0.85, tol=1e-10)
    print(f"\npagerank converged in {time.perf_counter() - t0:.3f} s")

    top = np.argsort(pr)[::-1][:10]
    print("\ntop-10 pages:")
    print(f"  {'page':>6} {'rank':>10} {'in-deg':>7} {'out-deg':>8}")
    in_deg = np.diff(A.csc().indptr)
    for v in top:
        print(f"  {v:6d} {pr[v]:10.6f} {in_deg[v]:7d} {deg[v]:8d}")

    try:
        import networkx as nx

        want = nx.pagerank(to_networkx(A), alpha=0.85, tol=1e-12)
        err = max(abs(pr[i] - want[i]) for i in range(n))
        print(f"\nnetworkx cross-check: max |diff| = {err:.2e}")
    except ImportError:
        print("\n(networkx not installed; skipping cross-check)")

    assert abs(pr.sum() - 1.0) < 1e-9
    print("probability mass conserved: sum(pr) = 1")


if __name__ == "__main__":
    main()
