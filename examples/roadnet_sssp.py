#!/usr/bin/env python
"""Road-network routing: SSSP over the min-plus (tropical) semiring.

A 2-D grid "road network" with random travel times demonstrates the
semiring-swap idea of section II: the same ``vxm`` primitive that counts
paths under +.× computes shortest distances under min.+ — only the algebra
changes.  Also shows BFS levels (hop counts) vs weighted distances.

Run:  python examples/roadnet_sssp.py [rows] [cols]
"""

import sys
import time

import numpy as np

import repro as grb
from repro.algorithms import bfs_levels, sssp, sssp_delta_log
from repro.io import grid_2d


def main() -> None:
    nr = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    nc = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    G = grid_2d(nr, nc, domain=grb.FP64, weighted=True, seed=3)
    n = G.nrows
    source = 0
    target = n - 1
    print(f"road grid: {nr}x{nc} junctions, {G.nvals()} road segments")

    t0 = time.perf_counter()
    hops = bfs_levels(G, source)
    t_bfs = time.perf_counter() - t0

    t0 = time.perf_counter()
    dist = sssp(G, source)
    t_sssp = time.perf_counter() - t0

    print(f"\nBFS hop counts : {t_bfs * 1e3:7.1f} ms")
    print(f"min-plus SSSP  : {t_sssp * 1e3:7.1f} ms")
    print(f"\njunction {target} (far corner):")
    print(f"  hops     = {int(hops.extract_element(target))}")
    print(f"  distance = {float(dist.extract_element(target)):.2f}")

    # the frontier growth series: how the relaxation wave fills the grid
    series = sssp_delta_log(G, source)
    print("\nreached junctions per relaxation round:")
    bar_max = max(series)
    for r, k in enumerate(series[:15]):
        print(f"  round {r:2d}: {'#' * int(40 * k / bar_max):<40} {k}")
    if len(series) > 15:
        print(f"  ... converged after {len(series) - 1} rounds")

    # sanity: hop count is a lower bound on distance / max edge weight
    hop_dense = hops.to_dense(-1)
    dist_dense = dist.to_dense(np.inf)
    reached = hop_dense >= 0
    assert (dist_dense[reached] >= hop_dense[reached]).all()
    print("\ninvariant verified: weighted distance >= hop count everywhere")


if __name__ == "__main__":
    main()
