#!/usr/bin/env python
"""Bench-trajectory harness: the repo's performance history in one table.

Every PR that touches performance leaves a ``BENCH_<tag>.json`` baseline
behind (``repro-bench/1`` schema, written by
:class:`repro.obs.export.BenchRecorder`).  This tool loads them all,
validates each against the schema, and renders a regression table —
benchmarks as rows, baseline files as columns, each cell the median in
milliseconds plus the delta against the previous baseline that measured
the same benchmark.  CI runs it with ``--check`` so a schema-breaking or
hand-mangled baseline fails the build instead of silently rotting.

Usage::

    python tools/bench_trajectory.py            # table over ./BENCH_*.json
    python tools/bench_trajectory.py --check    # validate only, no table
    python tools/bench_trajectory.py --dir path --json out.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

SCHEMA = "repro-bench/1"

#: required numeric statistics of every benchmark entry
STAT_FIELDS = ("min_s", "median_s", "mean_s", "max_s")


def validate(doc: object, path: str) -> list[str]:
    """Schema errors of one parsed baseline document (empty → valid)."""
    errs: list[str] = []
    if not isinstance(doc, dict):
        return [f"{path}: top level must be a JSON object"]
    if doc.get("schema") != SCHEMA:
        errs.append(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        errs.append(f"{path}: 'benchmarks' must be a non-empty list")
        return errs
    seen: set[str] = set()
    for i, b in enumerate(benches):
        where = f"{path}: benchmarks[{i}]"
        if not isinstance(b, dict):
            errs.append(f"{where} must be an object")
            continue
        name = b.get("name")
        if not isinstance(name, str) or not name:
            errs.append(f"{where} needs a non-empty string 'name'")
        elif name in seen:
            errs.append(f"{where} duplicates name {name!r}")
        else:
            seen.add(name)
        runs = b.get("runs")
        if not isinstance(runs, int) or isinstance(runs, bool) or runs < 1:
            errs.append(f"{where} needs integer 'runs' >= 1")
        for f in STAT_FIELDS:
            v = b.get(f)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                errs.append(f"{where} needs non-negative number {f!r}")
        if all(isinstance(b.get(f), (int, float)) for f in STAT_FIELDS):
            if not (b["min_s"] <= b["median_s"] <= b["max_s"]):
                errs.append(f"{where}: min_s <= median_s <= max_s violated")
    return errs


def _order_key(path: str):
    """BENCH_pr3 < BENCH_pr4 < BENCH_pr10 — numeric-aware, name-stable."""
    base = os.path.basename(path)
    parts = re.split(r"(\d+)", base)
    return [int(p) if p.isdigit() else p for p in parts]


def load_baselines(directory: str) -> tuple[list[tuple[str, dict]], list[str]]:
    """All ``BENCH_*.json`` under *directory*, ordered; plus schema errors."""
    paths = sorted(
        glob.glob(os.path.join(directory, "BENCH_*.json")), key=_order_key
    )
    docs: list[tuple[str, dict]] = []
    errors: list[str] = []
    for path in paths:
        label = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        errs = validate(doc, path)
        if errs:
            errors.extend(errs)
            continue
        docs.append((label, doc))
    return docs, errors


def trajectory(docs: list[tuple[str, dict]]) -> dict:
    """{benchmark: [(label, median_s, delta_vs_prev | None), ...]}."""
    out: dict[str, list] = {}
    for label, doc in docs:
        for b in doc["benchmarks"]:
            out.setdefault(b["name"], []).append((label, b["median_s"]))
    traj: dict[str, list] = {}
    for name, points in out.items():
        rows = []
        prev = None
        for label, median in points:
            delta = None if prev in (None, 0) else (median - prev) / prev
            rows.append((label, median, delta))
            prev = median
        traj[name] = rows
    return traj


def single_core_labels(docs: list[tuple[str, dict]]) -> set[str]:
    """Baselines recorded on a 1-core host (``env.host_cores: 1``).

    Parallel-backend numbers from such hosts measure serialization, not
    speedup, so the table flags them instead of letting a later multi-core
    rerun look like a regression (or vice versa).
    """
    return {
        label for label, doc in docs
        if isinstance(doc.get("env"), dict)
        and doc["env"].get("host_cores") == 1
    }


def render_table(docs: list[tuple[str, dict]]) -> str:
    """The human-facing regression table over all baselines."""
    flagged = single_core_labels(docs)
    labels = [label for label, _ in docs]
    shown = {lb: (lb + "*" if lb in flagged else lb) for lb in labels}
    traj = trajectory(docs)
    name_w = max([len("benchmark")] + [len(n) for n in traj])
    col_w = max([12] + [len(shown[lb]) + 9 for lb in labels])

    def cell(text: str) -> str:
        return text.rjust(col_w)

    lines = [
        " ".join(
            [("benchmark").ljust(name_w)] + [cell(shown[lb]) for lb in labels]
        ),
        " ".join(["-" * name_w] + ["-" * col_w for _ in labels]),
    ]
    for name in sorted(traj):
        by_label = {lb: (med, d) for lb, med, d in traj[name]}
        row = [name.ljust(name_w)]
        for lb in labels:
            if lb not in by_label:
                row.append(cell("-"))
                continue
            med, delta = by_label[lb]
            text = f"{med * 1e3:.2f}ms"
            if delta is not None:
                text += f" {delta * 100:+.0f}%"
            row.append(cell(text))
        lines.append(" ".join(row))
    if flagged:
        lines.append("")
        lines.append(
            f"* single-core host baseline ({', '.join(sorted(flagged))}): "
            "parallel-backend medians reflect serialization on 1 core and "
            "are not comparable against multi-core columns"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python tools/bench_trajectory.py",
        description="validate BENCH_*.json baselines and render the "
                    "performance trajectory table",
    )
    p.add_argument("--dir", default=".",
                   help="directory holding the BENCH_*.json baselines")
    p.add_argument("--check", action="store_true",
                   help="validate schemas only; print nothing but errors")
    p.add_argument("--json", default=None,
                   help="also write the trajectory as JSON here")
    args = p.parse_args(argv)

    docs, errors = load_baselines(args.dir)
    for err in errors:
        print(f"INVALID {err}", file=sys.stderr)
    if not docs and not errors:
        print(f"no BENCH_*.json baselines under {args.dir!r}", file=sys.stderr)
        return 1

    if not args.check and docs:
        print(f"{len(docs)} baselines: "
              + ", ".join(label for label, _ in docs))
        print(render_table(docs))

    if args.json and docs:
        flagged = single_core_labels(docs)
        doc = {
            "baselines": [label for label, _ in docs],
            "single_core_baselines": sorted(flagged),
            "notes": {
                lb: "recorded on a 1-core host (env.host_cores: 1); "
                    "parallel-backend numbers are not cross-comparable"
                for lb in sorted(flagged)
            },
            "trajectory": {
                name: [
                    {"baseline": lb, "median_s": med, "delta": d}
                    for lb, med, d in rows
                ]
                for name, rows in trajectory(docs).items()
            },
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
