"""Legacy setup shim.

Modern installs read pyproject.toml.  This file exists so that fully
offline environments without the ``wheel`` package can still do an
editable install via the pre-PEP-517 path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
