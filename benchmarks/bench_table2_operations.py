"""Table II — every fundamental GraphBLAS operation, timed on the shared
workload, optimized kernels vs the spec-literal reference implementation.

The "who wins" shape: the vectorized CSR kernels beat the dict-based
reference by one to two orders of magnitude on every operation, while the
property suite guarantees identical results.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary, unary
from repro.reference import (
    RefMatrix,
    RefVector,
    ref_apply,
    ref_ewise_add,
    ref_ewise_mult,
    ref_mxm,
    ref_mxv,
    ref_reduce_rows,
    ref_transpose,
    ref_vxm,
)

from conftest import header, row

S64 = predefined.PLUS_TIMES[grb.INT64]


@pytest.fixture(scope="module")
def W(er_pair):
    """Workload bundle: optimized and reference twins."""
    A, B = er_pair
    u = grb.Vector.from_coo(
        grb.INT64, A.ncols, np.arange(0, A.ncols, 3), 1
    )
    return {
        "A": A,
        "B": B,
        "u": u,
        "Ar": RefMatrix.from_grb(A),
        "Br": RefMatrix.from_grb(B),
        "ur": RefVector.from_grb(u),
    }


class BenchOptimized:
    """One benchmark per Table II operation — the optimized backend."""

    def bench_mxm(self, benchmark, W):
        def run():
            C = grb.Matrix(grb.INT64, 1000, 1000)
            grb.mxm(C, None, None, S64, W["A"], W["B"])
            return C

        C = benchmark(run)
        header("Table II: mxm   C ⊙= A ⊕.⊗ B")
        row("optimized nvals", C.nvals())

    def bench_mxv(self, benchmark, W):
        def run():
            w = grb.Vector(grb.INT64, 1000)
            grb.mxv(w, None, None, S64, W["A"], W["u"])
            return w

        w = benchmark(run)
        row("mxv nvals", w.nvals())

    def bench_vxm(self, benchmark, W):
        def run():
            w = grb.Vector(grb.INT64, 1000)
            grb.vxm(w, None, None, S64, W["u"], W["A"])
            return w

        benchmark(run)

    def bench_ewise_add(self, benchmark, W):
        def run():
            C = grb.Matrix(grb.INT64, 1000, 1000)
            grb.ewise_add(C, None, None, binary.PLUS[grb.INT64], W["A"], W["B"])
            return C

        benchmark(run)

    def bench_ewise_mult(self, benchmark, W):
        def run():
            C = grb.Matrix(grb.INT64, 1000, 1000)
            grb.ewise_mult(C, None, None, binary.TIMES[grb.INT64], W["A"], W["B"])
            return C

        benchmark(run)

    def bench_reduce_row(self, benchmark, W):
        def run():
            w = grb.Vector(grb.INT64, 1000)
            grb.reduce_to_vector(
                w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), W["A"]
            )
            return w

        benchmark(run)

    def bench_apply(self, benchmark, W):
        def run():
            C = grb.Matrix(grb.INT64, 1000, 1000)
            grb.apply(C, None, None, unary.AINV[grb.INT64], W["A"])
            return C

        benchmark(run)

    def bench_transpose(self, benchmark, W):
        def run():
            C = grb.Matrix(grb.INT64, 1000, 1000)
            grb.transpose(C, None, None, W["A"])
            return C

        benchmark(run)

    def bench_extract(self, benchmark, W):
        sel = np.arange(0, 1000, 2)

        def run():
            C = grb.Matrix(grb.INT64, 500, 500)
            grb.matrix_extract(C, None, None, W["A"], sel, sel)
            return C

        benchmark(run)

    def bench_assign(self, benchmark, W):
        sel = np.arange(0, 1000, 2)
        src = grb.Matrix(grb.INT64, 500, 500)
        grb.matrix_assign_scalar(src, None, None, 7, grb.ALL, grb.ALL)
        base = W["A"].dup()

        def run():
            C = base.dup()
            grb.matrix_assign(C, None, None, src, sel, sel)
            return C

        benchmark(run)


class BenchReferenceBaseline:
    """The same operations on the dict-based reference implementation
    (the paper-style 'straightforward implementation' comparator)."""

    def bench_ref_mxm(self, benchmark, W):
        def run():
            C = RefMatrix(grb.INT64, 1000, 1000)
            ref_mxm(C, None, None, S64, W["Ar"], W["Br"])
            return C

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_mxv(self, benchmark, W):
        def run():
            w = RefVector(grb.INT64, 1000)
            ref_mxv(w, None, None, S64, W["Ar"], W["ur"])
            return w

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_vxm(self, benchmark, W):
        def run():
            w = RefVector(grb.INT64, 1000)
            ref_vxm(w, None, None, S64, W["ur"], W["Ar"])
            return w

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_ewise_add(self, benchmark, W):
        def run():
            C = RefMatrix(grb.INT64, 1000, 1000)
            ref_ewise_add(C, None, None, binary.PLUS[grb.INT64], W["Ar"], W["Br"])
            return C

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_ewise_mult(self, benchmark, W):
        def run():
            C = RefMatrix(grb.INT64, 1000, 1000)
            ref_ewise_mult(C, None, None, binary.TIMES[grb.INT64], W["Ar"], W["Br"])
            return C

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_reduce_row(self, benchmark, W):
        def run():
            w = RefVector(grb.INT64, 1000)
            ref_reduce_rows(
                w, None, None, grb.monoid("GrB_PLUS_MONOID_INT64"), W["Ar"]
            )
            return w

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_apply(self, benchmark, W):
        def run():
            C = RefMatrix(grb.INT64, 1000, 1000)
            ref_apply(C, None, None, unary.AINV[grb.INT64], W["Ar"])
            return C

        benchmark.pedantic(run, rounds=3, iterations=1)

    def bench_ref_transpose(self, benchmark, W):
        def run():
            C = RefMatrix(grb.INT64, 1000, 1000)
            ref_transpose(C, None, None, W["Ar"])
            return C

        benchmark.pedantic(run, rounds=3, iterations=1)
