"""Table I — the five common graph semirings, regenerated executably.

For every row the benchmark (i) verifies the ⊕ identity / ⊗ annihilator
relationship through the API (never by storing an implied zero) and
(ii) times one semiring ``mxm`` on the shared workload, showing that *one*
operation services every algebra — the design point of section II.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined

from conftest import header, row


def _mxm(semiring, A, out_domain):
    C = grb.Matrix(out_domain, A.nrows, A.ncols)
    grb.mxm(C, None, None, semiring, A, A)
    return C


class BenchTable1:
    def bench_standard_arithmetic(self, benchmark, rmat_small):
        s = predefined.PLUS_TIMES[grb.FP64]
        C = benchmark(lambda: _mxm(s, rmat_small, grb.FP64))
        header("Table I row 1: standard arithmetic  <R, +, x, 0, 1>")
        row("semiring", s.name)
        row("identity/annihilator verified", s.add(0.0, 5.0) == 5.0 and s.mul(0.0, 5.0) == 0.0)
        row("A +.x A nvals", C.nvals())

    def bench_max_plus(self, benchmark, rmat_small):
        s = predefined.MAX_PLUS[grb.FP64]
        C = benchmark(lambda: _mxm(s, rmat_small, grb.FP64))
        header("Table I row 2: max-plus algebra  <R u {-inf}, max, +, -inf, 0>")
        row("0 = -inf is max-identity", s.add(-np.inf, 3.0) == 3.0)
        row("0 annihilates +", s.mul(-np.inf, 3.0) == -np.inf)
        row("A max.+ A nvals (critical paths)", C.nvals())

    def bench_min_max(self, benchmark, rmat_small):
        s = predefined.MIN_MAX[grb.FP64]
        C = benchmark(lambda: _mxm(s, rmat_small, grb.FP64))
        header("Table I row 3: min-max algebra  <R>=0 u {inf}, min, max, inf, 0>")
        row("0 = +inf is min-identity", s.add(np.inf, 3.0) == 3.0)
        row("A min.max A nvals (bottlenecks)", C.nvals())

    def bench_gf2(self, benchmark, rmat_small):
        s = predefined.LXOR_LAND[grb.BOOL]
        C = benchmark(lambda: _mxm(s, rmat_small, grb.BOOL))
        header("Table I row 4: Galois field GF(2)  <{0,1}, xor, and, 0, 1>")
        row("xor is char-2 addition", s.add(True, True) == False)  # noqa: E712
        row("A xor.and A nvals (parity of paths)", C.nvals())

    def bench_power_set(self, benchmark):
        # UDT semirings run the generic kernel path; workload kept smaller
        s = grb.powerset_semiring()
        pset = s.d_out
        rng = np.random.default_rng(0)
        n = 48
        rows_, cols_ = np.nonzero(rng.random((n, n)) < 0.15)
        vals = [frozenset(rng.choice(16, size=3).tolist()) for _ in rows_]
        A = grb.Matrix(pset, n, n)
        A.build(rows_, cols_, vals)

        def run():
            return _mxm(s, A, pset)

        C = benchmark(run)
        header("Table I row 5: power set algebra  <P(Z), union, intersect, {}, U>")
        row("{} is union-identity", s.add(frozenset(), frozenset({1})) == frozenset({1}))
        row("{} annihilates intersect", s.mul(frozenset(), frozenset({1})) == frozenset())
        row("A u.n A nvals (label propagation)", C.nvals())
