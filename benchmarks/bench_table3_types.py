"""Table III — the GraphBLAS data types, regenerated as an executable
inventory with object-construction costs.

Opaque-handle creation in the C API is meant to be cheap; this bench
confirms that object construction (the "new" methods of Table VI) is
microseconds even when the collection is large, since storage is allocated
lazily by the first build/operation.
"""

import pytest

import repro as grb

from conftest import header, row


class BenchTable3:
    def bench_matrix_new(self, benchmark):
        A = benchmark(lambda: grb.matrix_new(grb.FP32, 1_000_000, 1_000_000))
        header("Table III: GraphBLAS data types (constructed live)")
        row("GrB_Info", grb.Info.SUCCESS.name)
        row("GrB_Index", "python int / int64 arrays")
        row("GrB_Type", grb.FP32.name)
        row("GrB_Matrix (1M x 1M empty)", repr(A.shape))

    def bench_vector_new(self, benchmark):
        v = benchmark(lambda: grb.vector_new(grb.FP32, 1_000_000))
        row("GrB_Vector (1M empty)", v.size)

    def bench_descriptor_new(self, benchmark):
        def mk():
            d = grb.descriptor_new()
            grb.descriptor_set(d, grb.INP0, grb.TRAN)
            grb.descriptor_set(d, grb.MASK, grb.SCMP)
            grb.descriptor_set(d, grb.OUTP, grb.REPLACE)
            return d

        d = benchmark(mk)
        row("GrB_Descriptor (Fig. 3 desc_tsr)", repr(d))

    def bench_monoid_new(self, benchmark):
        m = benchmark(
            lambda: grb.monoid_new(grb.binary_op("GrB_PLUS_INT32"), 0)
        )
        row("GrB_Monoid", m.name)

    def bench_semiring_new(self, benchmark):
        add = grb.monoid("GrB_PLUS_MONOID_INT32")
        mul = grb.binary_op("GrB_TIMES_INT32")
        s = benchmark(lambda: grb.semiring_new(add, mul))
        row("GrB_Semiring", s.name)

    def bench_udt_new(self, benchmark):
        t = benchmark(lambda: grb.type_new("PowerSet", frozenset))
        row("GrB_Type_new (user-defined)", t.name)
