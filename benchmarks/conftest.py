"""Shared benchmark workloads and reporting helpers.

Workloads are module-scoped so generation cost is paid once; every
benchmark prints the paper-style row(s) it regenerates, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the content of each table/figure alongside the timings
(EXPERIMENTS.md records a captured run).

When ``REPRO_BENCH_JSON`` is set, every pytest-benchmark measurement is
also funnelled through :class:`repro.obs.BenchRecorder` and written to
that path at session end (the ``repro-bench/1`` schema the CI
bench-smoke job and ``python -m repro.obs.bench`` share).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro as grb
from repro import context, obs
from repro.io import erdos_renyi, grid_2d, rmat
from repro.reference import RefMatrix, RefVector


@pytest.fixture(autouse=True)
def fresh_context():
    context._reset()
    yield
    context._reset()


@pytest.fixture(scope="session")
def rmat_graph():
    """The standard power-law workload: RMAT scale 10, ~8k vertices."""
    return rmat(10, 8, seed=42, domain=grb.INT32)


@pytest.fixture(scope="session")
def rmat_small():
    return rmat(8, 8, seed=42, domain=grb.INT32)


@pytest.fixture(scope="session")
def er_graph():
    return erdos_renyi(2000, 20000, seed=42, domain=grb.INT64)


@pytest.fixture(scope="session")
def er_pair():
    A = erdos_renyi(1000, 15000, seed=1, domain=grb.INT64)
    B = erdos_renyi(1000, 15000, seed=2, domain=grb.INT64)
    return A, B

@pytest.fixture(scope="session")
def grid_graph():
    return grid_2d(40, 40, domain=grb.FP64, weighted=True)


def ref_of(M: grb.Matrix) -> RefMatrix:
    return RefMatrix.from_grb(M)


def header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def row(label: str, *cols) -> None:
    print(f"  {label:<38}" + "".join(f"{c!s:>16}" for c in cols))


# --- machine-readable baseline (REPRO_BENCH_JSON=path) -----------------

def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    rec = obs.BenchRecorder(meta={"suite": "benchmarks", "exitstatus": int(exitstatus)})
    for bench in getattr(bench_session, "benchmarks", []):
        data = getattr(getattr(bench, "stats", None), "data", None)
        if data:
            rec.record(bench.name, list(data), group=bench.group or "")
    if rec.entries:
        rec.write(path)
        print(f"\nrepro-bench baseline: wrote {len(rec.entries)} entries to {path}")
