"""Ablation — push vs pull masked SpMV (direction optimization).

With a selective, non-complemented mask the SpMV kernel gathers only the
masked output rows (*pull*) instead of streaming every stored element of
the matrix (*push*).  Section VIII of the paper points at GPU backends
(Gunrock) where exactly this choice dominates BFS performance.

Expected shape: pull wins when the mask selects a small fraction of rows
and the win shrinks toward parity as the mask grows.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import PLUS_TIMES
from repro.io import erdos_renyi, random_vector
from repro.operations import _kernels
from repro.types import FP64, INT64

from conftest import header, row


@pytest.fixture(scope="module")
def workload():
    A = erdos_renyi(4000, 120_000, seed=91, domain=INT64)
    u = random_vector(4000, 0.5, seed=92, domain=FP64)
    return A, u


def _mask_of(n, k, seed=93):
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(n, size=k, replace=False))
    return grb.Vector.from_coo(grb.BOOL, n, idx, np.ones(k, dtype=bool))


class BenchPushPull:
    @pytest.mark.parametrize("frac", [0.01, 0.1, 0.45])
    def bench_masked_mxv_auto(self, benchmark, workload, frac):
        """The kernel's automatic choice (pull for frac <= 0.5)."""
        A, u = workload
        m = _mask_of(4000, int(4000 * frac))

        def run():
            w = grb.Vector(FP64, 4000)
            grb.mxv(w, m, None, PLUS_TIMES[FP64], A, u, grb.DESC_R)
            return w

        w = benchmark(run)
        if frac == 0.01:
            header("Ablation: push vs pull masked SpMV (n=4000, m=120k)")
        row(f"auto (pull), mask {frac:.0%} of rows", f"nvals={w.nvals()}")

    @pytest.mark.parametrize("frac", [0.01, 0.1])
    def bench_masked_mxv_forced_push(self, benchmark, workload, frac):
        """Force the push path by calling the kernel without the mask and
        filtering afterwards — what the kernel would do without the
        direction optimization."""
        A, u = workload
        m = _mask_of(4000, int(4000 * frac))

        def run():
            view = A.csr()
            u_keys, u_raw = u._content()
            keys, vals = _kernels.spmv(
                view, view.values.astype(np.float64), u_keys, u_raw,
                PLUS_TIMES[FP64], mask_view=None,
            )
            from repro.containers.mask import build_mask_view

            mv = build_mask_view(m, False, False)
            keep = mv.allows(keys)
            return keys[keep], vals[keep]

        keys, _ = benchmark(run)
        row(f"forced push, mask {frac:.0%} of rows", f"nvals={len(keys)}")

    def bench_unmasked_reference_point(self, benchmark, workload):
        A, u = workload

        def run():
            w = grb.Vector(FP64, 4000)
            grb.mxv(w, None, None, PLUS_TIMES[FP64], A, u)
            return w

        w = benchmark(run)
        row("no mask (full push)", f"nvals={w.nvals()}")
