"""Ablation — the write-mask as an *optimization*, not just a filter.

DESIGN.md calls out mask push-down: because only Z∩M is ever written, the
kernels drop products destined outside the mask before the expensive
sort-reduce.  This bench quantifies it two ways:

* masked mxm vs compute-everything-then-filter (what a user without masks
  would write) — the paper's motivation for masks being part of the API;
* triangle counting, the canonical masked-SpGEMM consumer, with and
  without the mask.

Shape expected: masked wins, and wins harder as the mask gets sparser.
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.algorithms import lower_triangle
from repro.io import erdos_renyi, rmat
from repro.ops import binary

from conftest import header, row

S = predefined.PLUS_TIMES[grb.INT64]


@pytest.fixture(scope="module")
def workload():
    A = erdos_renyi(1200, 24000, seed=51, domain=grb.INT64)
    B = erdos_renyi(1200, 24000, seed=52, domain=grb.INT64)
    return A, B


def _mask(density: float):
    return erdos_renyi(
        1200, int(1200 * 1200 * density), seed=53, domain=grb.BOOL
    )


class BenchMaskPushdown:
    @pytest.mark.parametrize("density", [0.001, 0.01, 0.05])
    def bench_masked_mxm(self, benchmark, workload, density):
        A, B = workload
        M = _mask(density)

        def run():
            C = grb.Matrix(grb.INT64, 1200, 1200)
            grb.mxm(C, M, None, S, A, B, grb.DESC_R)
            return C

        C = benchmark(run)
        if density == 0.001:
            header("Ablation: mask push-down in mxm (1200^2 space)")
        row(f"masked, mask density {density}", f"nvals={C.nvals()}")

    def bench_unmasked_then_filter(self, benchmark, workload):
        A, B = workload
        M = _mask(0.001)

        def run():
            # what a mask-less API forces: full product, then eWiseMult
            # against the mask pattern to filter
            C = grb.Matrix(grb.INT64, 1200, 1200)
            grb.mxm(C, None, None, S, A, B)
            F = grb.Matrix(grb.INT64, 1200, 1200)
            grb.ewise_mult(F, None, None, binary.FIRST[grb.INT64], C, M)
            return F

        F = benchmark(run)
        row("unmasked + post-filter (density 0.001)", f"nvals={F.nvals()}")


class BenchTriangleMask:
    @pytest.fixture(scope="class")
    def tri_graph(self):
        A = rmat(9, 10, seed=55)
        # symmetrize
        B = grb.Matrix(grb.BOOL, A.nrows, A.ncols)
        grb.ewise_add(B, None, None, grb.LOR, A, A, grb.DESC_T1)
        return lower_triangle(B)

    def bench_masked_triangle_spgemm(self, benchmark, tri_graph):
        L = tri_graph

        def run():
            C = grb.Matrix(grb.INT64, L.nrows, L.ncols)
            grb.mxm(C, L, None, predefined.PLUS_PAIR[grb.INT64], L, L, grb.DESC_R)
            return grb.reduce_to_scalar(grb.monoid("GrB_PLUS_MONOID_INT64"), C)

        tri = benchmark(run)
        header("Ablation: triangle counting (Sandia LL)")
        row("masked C<L> = L +.pair L", f"triangles={tri}")

    def bench_unmasked_triangle_spgemm(self, benchmark, tri_graph):
        L = tri_graph

        def run():
            C = grb.Matrix(grb.INT64, L.nrows, L.ncols)
            grb.mxm(C, None, None, predefined.PLUS_PAIR[grb.INT64], L, L)
            F = grb.Matrix(grb.INT64, L.nrows, L.ncols)
            grb.ewise_mult(F, None, None, binary.FIRST[grb.INT64], C, L)
            return grb.reduce_to_scalar(grb.monoid("GrB_PLUS_MONOID_INT64"), F)

        tri = benchmark(run)
        row("unmasked L +.pair L then filter", f"triangles={tri}")
