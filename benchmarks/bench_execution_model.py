"""Section IV — blocking vs nonblocking execution.

Measures (a) the method-call overhead the deferred queue removes from the
issuing thread, (b) end-to-end cost of the same sequence in both modes —
identical results guaranteed by section IV's equivalence — and (c) the one
queue optimization this implementation performs: dead-op elimination, where
results that are overwritten before being observed are never computed.
"""

import numpy as np
import pytest

import repro as grb
from repro import context
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.ops import binary

from conftest import header, row

S = predefined.PLUS_TIMES[grb.INT64]


def _sequence(A, reps=4):
    """A chain with dead intermediates: only the last product is observed."""
    C = grb.Matrix(grb.INT64, A.nrows, A.ncols)
    for _ in range(reps):
        grb.mxm(C, None, None, S, A, A)  # each overwrites the previous
    return C


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(700, 9000, seed=41, domain=grb.INT64)


class BenchModes:
    def bench_blocking_sequence(self, benchmark, graph):
        def run():
            context._reset()
            C = _sequence(graph)
            return C.nvals()

        n = benchmark(run)
        header("Section IV: blocking vs nonblocking (4x overwritten mxm)")
        row("blocking: executes all 4 products", f"nvals={n}")

    def bench_nonblocking_sequence(self, benchmark, graph):
        def run():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            C = _sequence(graph)
            n = C.nvals()  # forces completion
            return n, grb.queue_stats()

        n, stats = benchmark(run)
        row(
            "nonblocking: dead-op elimination",
            f"executed={stats['executed']}, elided={stats['elided']}",
        )

    def bench_issue_latency_blocking(self, benchmark, graph):
        # time to *issue* one mxm (blocking: includes the whole product)
        C = grb.Matrix(grb.INT64, graph.nrows, graph.ncols)

        def run():
            grb.mxm(C, None, None, S, graph, graph)

        benchmark(run)
        row("blocking issue latency", "includes computation")

    def bench_issue_latency_nonblocking(self, benchmark, graph):
        def setup():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            return (grb.Matrix(grb.INT64, graph.nrows, graph.ncols),), {}

        def run(C):
            grb.mxm(C, None, None, S, graph, graph)

        benchmark.pedantic(run, setup=setup, rounds=200, iterations=1)
        row("nonblocking issue latency", "validation only (section IV)")


class BenchEquivalence:
    def bench_results_identical(self, benchmark, graph):
        def run():
            context._reset()
            b = _sequence(graph).extract_tuples()
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            nb = _sequence(graph).extract_tuples()
            assert np.array_equal(b[0], nb[0])
            assert np.array_equal(b[2], nb[2])
            return len(b[0])

        n = benchmark.pedantic(run, rounds=3, iterations=1)
        row("blocking == nonblocking result", f"verified on {n} tuples")


class BenchWaitGranularity:
    """The paper's 'wait after every op' equivalence, as a cost series."""

    @pytest.mark.parametrize("wait_every", [1, 2, 8])
    def bench_wait_every(self, benchmark, graph, wait_every):
        def run():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            C = grb.Matrix(grb.INT64, graph.nrows, graph.ncols)
            for k in range(8):
                grb.mxm(C, None, None, S, graph, graph)
                if (k + 1) % wait_every == 0:
                    grb.wait()
            grb.wait()
            return grb.queue_stats()

        stats = benchmark.pedantic(run, rounds=3, iterations=1)
        row(
            f"wait() every {wait_every} ops",
            f"executed={stats['executed']}, elided={stats['elided']}",
        )
