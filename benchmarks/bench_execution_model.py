"""Section IV — blocking vs nonblocking execution.

Measures (a) the method-call overhead the deferred queue removes from the
issuing thread, (b) end-to-end cost of the same sequence in both modes —
identical results guaranteed by section IV's equivalence — and (c) the
sequence planner's optimizations, ablated pass by pass on a BC-shaped
sequence: dead-op elimination, producer→consumer fusion, CSE, and the
parallel DAG schedule.
"""

import numpy as np
import pytest

import repro as grb
from repro import context, parallel, planner
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.ops import binary

from conftest import header, row

S = predefined.PLUS_TIMES[grb.INT64]


def _sequence(A, reps=4):
    """A chain with dead intermediates: only the last product is observed."""
    C = grb.Matrix(grb.INT64, A.nrows, A.ncols)
    for _ in range(reps):
        grb.mxm(C, None, None, S, A, A)  # each overwrites the previous
    return C


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(700, 9000, seed=41, domain=grb.INT64)


class BenchModes:
    def bench_blocking_sequence(self, benchmark, graph):
        def run():
            context._reset()
            C = _sequence(graph)
            return C.nvals()

        n = benchmark(run)
        header("Section IV: blocking vs nonblocking (4x overwritten mxm)")
        row("blocking: executes all 4 products", f"nvals={n}")

    def bench_nonblocking_sequence(self, benchmark, graph):
        def run():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            C = _sequence(graph)
            n = C.nvals()  # forces completion
            return n, grb.queue_stats()

        n, stats = benchmark(run)
        row(
            "nonblocking: dead-op elimination",
            f"executed={stats['executed']}, elided={stats['elided']}",
        )

    def bench_issue_latency_blocking(self, benchmark, graph):
        # time to *issue* one mxm (blocking: includes the whole product)
        C = grb.Matrix(grb.INT64, graph.nrows, graph.ncols)

        def run():
            grb.mxm(C, None, None, S, graph, graph)

        benchmark(run)
        row("blocking issue latency", "includes computation")

    def bench_issue_latency_nonblocking(self, benchmark, graph):
        def setup():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            return (grb.Matrix(grb.INT64, graph.nrows, graph.ncols),), {}

        def run(C):
            grb.mxm(C, None, None, S, graph, graph)

        benchmark.pedantic(run, setup=setup, rounds=200, iterations=1)
        row("nonblocking issue latency", "validation only (section IV)")


class BenchEquivalence:
    def bench_results_identical(self, benchmark, graph):
        def run():
            context._reset()
            b = _sequence(graph).extract_tuples()
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            nb = _sequence(graph).extract_tuples()
            assert np.array_equal(b[0], nb[0])
            assert np.array_equal(b[2], nb[2])
            return len(b[0])

        n = benchmark.pedantic(run, rounds=3, iterations=1)
        row("blocking == nonblocking result", f"verified on {n} tuples")


class BenchWaitGranularity:
    """The paper's 'wait after every op' equivalence, as a cost series."""

    @pytest.mark.parametrize("wait_every", [1, 2, 8])
    def bench_wait_every(self, benchmark, graph, wait_every):
        def run():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            C = grb.Matrix(grb.INT64, graph.nrows, graph.ncols)
            for k in range(8):
                grb.mxm(C, None, None, S, graph, graph)
                if (k + 1) % wait_every == 0:
                    grb.wait()
            grb.wait()
            return grb.queue_stats()

        stats = benchmark.pedantic(run, rounds=3, iterations=1)
        row(
            f"wait() every {wait_every} ops",
            f"executed={stats['executed']}, elided={stats['elided']}",
        )


class BenchPlannerAblation:
    """Planner passes ablated one at a time on a BC-shaped batched tail.

    The sequence mirrors the tail of the paper's Fig. 3 BC kernel: per
    batch, a frontier product, an in-place ``apply`` on it, an ``eWiseMult``
    into a shared temporary, and an accumulating row-``reduce`` of that
    temporary — plus a dead leading write (overwritten before any read) and
    one product repeated every batch, so each planner pass has work to do.
    """

    NBATCH = 4
    NSRC = 32

    CONFIGS = [
        ("planner off", dict(enabled=False), 1),
        ("dead-op only", dict(fusion=False, cse=False, parallel=False), 1),
        ("+fusion", dict(cse=False, parallel=False), 1),
        ("+cse", dict(parallel=False), 1),
        ("+parallel(2)", dict(), 2),
    ]

    @staticmethod
    def _random_block(rng, nrows, ncols, nnz):
        flat = rng.choice(nrows * ncols, size=nnz, replace=False)
        rows, cols = np.divmod(flat, ncols)
        vals = rng.integers(1, 5, size=nnz, dtype=np.int64)
        return grb.Matrix.from_coo(grb.INT64, nrows, ncols, rows, cols, vals)

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(5)
        A = erdos_renyi(600, 9000, seed=5, domain=grb.INT64)
        F = [
            self._random_block(rng, 600, self.NSRC, 2400)
            for _ in range(self.NBATCH)
        ]
        NS = self._random_block(rng, 600, self.NSRC, 6000)
        return A, F, NS

    def _bc_tail(self, A, F, NS):
        times = binary.TIMES[grb.INT64]
        plus = binary.PLUS[grb.INT64]
        T = grb.Matrix(grb.INT64, A.nrows, self.NSRC)
        delta = grb.Vector(grb.INT64, A.nrows)
        # dead head: batch 0 overwrites T before anything reads it
        grb.ewise_mult(T, None, None, times, NS, NS)
        for b in range(self.NBATCH):
            P = grb.Matrix(grb.INT64, A.nrows, self.NSRC)
            G = grb.Matrix(grb.INT64, A.nrows, self.NSRC)
            grb.mxm(P, None, None, S, A, F[b])  # fuses with the apply
            grb.apply(P, None, None, grb.AINV[grb.INT64], P)
            grb.ewise_mult(T, None, None, times, P, NS)  # fuses w/ reduce
            grb.reduce(delta, None, plus, plus, T)  # batch b+1 overwrites T
            grb.mxm(G, None, None, S, A, F[0])  # same product each batch
            grb.reduce(delta, None, plus, plus, G)
        return delta

    @pytest.mark.parametrize(
        "label,knobs,nthreads", CONFIGS, ids=[c[0] for c in CONFIGS]
    )
    def bench_ablation(self, benchmark, workload, label, knobs, nthreads):
        A, F, NS = workload

        def run():
            context._reset()
            grb.init(grb.Mode.NONBLOCKING)
            parallel.set_num_threads(nthreads)
            try:
                with planner.override(**knobs):
                    delta = self._bc_tail(A, F, NS)
                    grb.wait()
                return delta.extract_tuples(), grb.queue_stats()
            finally:
                parallel.set_num_threads(1)

        (idx, vals), stats = benchmark.pedantic(run, rounds=3, iterations=1)

        context._reset()  # blocking oracle: planner never sees these ops
        want_idx, want_vals = self._bc_tail(A, F, NS).extract_tuples()
        assert np.array_equal(idx, want_idx)
        assert np.array_equal(vals, want_vals) and vals.dtype == want_vals.dtype
        if knobs.get("enabled", True) and knobs.get("fusion", True):
            assert stats["fused"] >= 1 and stats["elided"] >= 1

        if label == "planner off":
            header(
                f"Planner ablation: BC-shaped tail, {self.NBATCH} batches "
                f"x {self.NSRC} sources"
            )
        row(
            label,
            f"executed={stats['executed']}, elided={stats['elided']}, "
            f"fused={stats['fused']}, cse={stats['cse']}, "
            f"width={stats['max_width']}",
        )
