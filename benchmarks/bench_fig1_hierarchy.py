"""Fig. 1 — the hierarchy of algebraic object classes, exercised bottom-up.

Builds the full composition chain live — binary op → monoid → semiring —
for every predefined family, asserting the structural relationships the
UML diagram draws (semiring = conventional monoid + three-domain binary
operator, no multiplicative identity required), and times the composition.
"""

import pytest

import repro as grb
from repro.algebra import predefined
from repro.ops import binary
from repro.ops.base import BinaryOp

from conftest import header, row


class BenchFig1:
    def bench_compose_full_chain(self, benchmark):
        def compose():
            op = binary.PLUS[grb.FP64]            # F_b = <D, D, D, +>
            m = grb.monoid_new(op, 0.0)           # M = <F, 0>
            s = grb.semiring_new(m, binary.TIMES[grb.FP64])  # S = <M, F>
            return s

        s = benchmark(compose)
        header("Fig. 1: algebraic hierarchy, composed bottom-up")
        row("binary op", s.mul.name)
        row("monoid", s.add.name)
        row("semiring", s.name)
        row("monoid recoverable from semiring", isinstance(s.add, grb.Monoid))
        row("binary op recoverable", isinstance(s.mul, BinaryOp))

    def bench_mixed_domain_semiring(self, benchmark):
        # the GraphBLAS semiring's D1 x D2 -> D3 generality (Fig. 1 caption)
        def compose():
            mul = grb.binary_op_new(
                lambda a, b: float(a) * b, grb.INT32, grb.FP64, grb.FP64,
                name="int_x_fp",
            )
            return grb.semiring_new(grb.monoid("GrB_PLUS_MONOID_FP64"), mul)

        s = benchmark(compose)
        row("mixed-domain semiring", f"<{s.d_in1.name}, {s.d_in2.name}, {s.d_out.name}>")

    def bench_every_predefined_semiring_decomposes(self, benchmark):
        families = [
            predefined.PLUS_TIMES, predefined.MIN_PLUS, predefined.MAX_PLUS,
            predefined.MIN_TIMES, predefined.MAX_TIMES, predefined.MIN_MAX,
            predefined.MAX_MIN, predefined.PLUS_MIN, predefined.PLUS_MAX,
            predefined.MIN_FIRST, predefined.MIN_SECOND, predefined.MAX_FIRST,
            predefined.MAX_SECOND, predefined.PLUS_FIRST,
            predefined.PLUS_SECOND, predefined.PLUS_PAIR,
        ]

        def check_all():
            count = 0
            for fam in families:
                for t, s in fam.items():
                    assert s.add.domain is s.d_out
                    assert s.mul.d_out is s.d_out or s.mul.d_out == s.d_out
                    count += 1
            return count

        n = benchmark(check_all)
        row("predefined semirings validated", n + 4)  # + the BOOL quartet

    def bench_identity_probe(self, benchmark):
        # monoid construction probes the identity (catches misuse early);
        # the check must stay cheap since user code composes in loops
        op = binary.MIN[grb.INT64]
        ident = 2**63 - 1
        benchmark(lambda: grb.monoid_new(op, ident))
