"""Fig. 2 — ``GrB_mxm``: every descriptor variant timed, and every
documented return condition exercised.

The paper devotes its only full-page figure to this one signature; the
bench regenerates (a) the descriptor table of Fig. 2b as timed variants
and (b) the return-value table of Fig. 2c as error-path costs (API errors
must be cheap: they are checked before any computation starts).
"""

import numpy as np
import pytest

import repro as grb
from repro.algebra import predefined
from repro.io import erdos_renyi

from conftest import header, row

S = predefined.PLUS_TIMES[grb.INT64]


@pytest.fixture(scope="module")
def workload():
    A = erdos_renyi(800, 12000, seed=31, domain=grb.INT64)
    B = erdos_renyi(800, 12000, seed=32, domain=grb.INT64)
    M = erdos_renyi(800, 6000, seed=33, domain=grb.BOOL)
    return A, B, M


class BenchDescriptorVariants:
    """Fig. 2b: the four descriptor rows."""

    def bench_default(self, benchmark, workload):
        A, B, M = workload

        def run():
            C = grb.Matrix(grb.INT64, 800, 800)
            grb.mxm(C, None, None, S, A, B)
            return C

        C = benchmark(run)
        header("Fig. 2b: GrB_mxm descriptor variants")
        row("default (no desc)", f"nvals={C.nvals()}")

    def bench_outp_replace(self, benchmark, workload):
        A, B, M = workload

        def run():
            C = grb.Matrix(grb.INT64, 800, 800)
            grb.mxm(C, M, None, S, A, B, grb.DESC_R)
            return C

        C = benchmark(run)
        row("OUTP=REPLACE with mask", f"nvals={C.nvals()}")

    def bench_mask_scmp(self, benchmark, workload):
        A, B, M = workload

        def run():
            C = grb.Matrix(grb.INT64, 800, 800)
            grb.mxm(C, M, None, S, A, B, grb.DESC_RSC)
            return C

        C = benchmark(run)
        row("MASK=SCMP (complement)", f"nvals={C.nvals()}")

    def bench_inp0_tran(self, benchmark, workload):
        A, B, M = workload

        def run():
            C = grb.Matrix(grb.INT64, 800, 800)
            grb.mxm(C, None, None, S, A, B, grb.DESC_T0)
            return C

        benchmark(run)
        row("INP0=TRAN", "Aᵀ B")

    def bench_inp1_tran(self, benchmark, workload):
        A, B, M = workload

        def run():
            C = grb.Matrix(grb.INT64, 800, 800)
            grb.mxm(C, None, None, S, A, B, grb.DESC_T1)
            return C

        benchmark(run)
        row("INP1=TRAN", "A Bᵀ")

    def bench_accumulate(self, benchmark, workload):
        A, B, M = workload
        base = grb.Matrix(grb.INT64, 800, 800)
        grb.mxm(base, None, None, S, A, A)

        def run():
            C = base.dup()
            grb.mxm(C, None, grb.PLUS[grb.INT64], S, A, B)
            return C

        benchmark(run)
        row("accum=GrB_PLUS_INT64", "C += A⊕.⊗B")


class BenchReturnConditions:
    """Fig. 2c: the error paths, which must cost microseconds (section V:
    'the method returns without making any changes')."""

    def _expect(self, exc, fn):
        try:
            fn()
        except exc:
            return True
        raise AssertionError(f"expected {exc.__name__}")

    def bench_api_error_dimension_mismatch(self, benchmark, workload):
        A, B, M = workload
        bad = grb.Matrix(grb.INT64, 3, 3)
        benchmark(
            lambda: self._expect(
                grb.DimensionMismatch,
                lambda: grb.mxm(bad, None, None, S, A, B),
            )
        )
        header("Fig. 2c: return conditions (exercised live)")
        row("GrB_DIMENSION_MISMATCH", "raised, output untouched")

    def bench_api_error_domain_mismatch(self, benchmark, workload):
        A, B, M = workload
        T = grb.powerset_type()
        U = grb.Matrix(T, 800, 800)
        C = grb.Matrix(grb.INT64, 800, 800)
        benchmark(
            lambda: self._expect(
                grb.DomainMismatch,
                lambda: grb.mxm(C, None, None, S, A, U),
            )
        )
        row("GrB_DOMAIN_MISMATCH", "raised")

    def bench_api_error_uninitialized(self, benchmark, workload):
        A, B, M = workload
        dead = grb.Matrix(grb.INT64, 800, 800)
        dead.free()
        C = grb.Matrix(grb.INT64, 800, 800)
        benchmark(
            lambda: self._expect(
                grb.UninitializedObject,
                lambda: grb.mxm(C, None, None, S, dead, B),
            )
        )
        row("GrB_UNINITIALIZED_OBJECT", "raised")

    def bench_api_error_null_pointer(self, benchmark, workload):
        A, B, M = workload
        benchmark(
            lambda: self._expect(
                grb.NullPointer,
                lambda: grb.mxm(None, None, None, S, A, B),
            )
        )
        row("GrB_NULL_POINTER", "raised")
        row("GrB_SUCCESS / GrB_INVALID_OBJECT / GrB_PANIC",
            "see execution-model bench")
