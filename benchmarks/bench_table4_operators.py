"""Table IV — the predefined operators the paper names, exercised on the
shared workload, plus the registry inventory.

The paper lists six operators explicitly (the ones BC needs); the C API
predefines typed families.  This bench regenerates the table rows and
times the two usage patterns: ``apply`` with the unary ops and an
``eWiseAdd``/``mxm`` with the binary ones.
"""

import numpy as np
import pytest

import repro as grb
from repro.ops import binary, unary
from repro.ops.binary import BINARY_REGISTRY
from repro.ops.unary import UNARY_REGISTRY

from conftest import header, row


@pytest.fixture(scope="module")
def int_matrix(er_pair):
    return er_pair[0]


@pytest.fixture(scope="module")
def fp_matrix(er_pair):
    A = er_pair[0]
    B = grb.Matrix(grb.FP32, A.nrows, A.ncols)
    grb.apply(B, None, None, unary.ABS[grb.FP32], A)
    return B


class BenchTable4:
    def bench_times_int32(self, benchmark, int_matrix):
        def run():
            C = grb.Matrix(grb.INT32, 1000, 1000)
            grb.ewise_mult(
                C, None, None, grb.binary_op("GrB_TIMES_INT32"),
                int_matrix, int_matrix,
            )
            return C

        benchmark(run)
        header("Table IV: predefined operators (registry inventory)")
        row("GrB_TIMES_INT32", "binary, product of int32")
        row("GrB_PLUS_INT32", "binary, sum of int32")
        row("GrB_PLUS_FP32", "binary, sum of fp32")
        row("GrB_TIMES_FP32", "binary, product of fp32")
        row("GrB_MINV_FP32", "unary, reciprocal of fp32")
        row("GrB_IDENTITY_BOOL", "unary, identity on bool")
        row("total predefined binary ops", len(BINARY_REGISTRY))
        row("total predefined unary ops", len(UNARY_REGISTRY))

    def bench_plus_int32(self, benchmark, int_matrix):
        def run():
            C = grb.Matrix(grb.INT32, 1000, 1000)
            grb.ewise_add(
                C, None, None, grb.binary_op("GrB_PLUS_INT32"),
                int_matrix, int_matrix,
            )
            return C

        benchmark(run)

    def bench_plus_times_fp32(self, benchmark, fp_matrix):
        def run():
            C = grb.Matrix(grb.FP32, 1000, 1000)
            grb.ewise_add(
                C, None, None, grb.binary_op("GrB_PLUS_FP32"),
                fp_matrix, fp_matrix,
            )
            grb.ewise_mult(
                C, None, None, grb.binary_op("GrB_TIMES_FP32"),
                fp_matrix, fp_matrix,
            )
            return C

        benchmark(run)

    def bench_minv_fp32(self, benchmark, fp_matrix):
        def run():
            C = grb.Matrix(grb.FP32, 1000, 1000)
            grb.apply(C, None, None, grb.unary_op("GrB_MINV_FP32"), fp_matrix)
            return C

        benchmark(run)

    def bench_identity_bool(self, benchmark, int_matrix):
        def run():
            C = grb.Matrix(grb.BOOL, 1000, 1000)
            grb.apply(C, None, None, grb.unary_op("GrB_IDENTITY_BOOL"), int_matrix)
            return C

        benchmark(run)

    def bench_registry_lookup(self, benchmark):
        # name-based dispatch must be O(1): it sits on every hot call path
        # of transliterated C code
        benchmark(lambda: grb.binary_op("GrB_PLUS_INT32"))
