"""Kernel backends on fused chains: interpreter vs codegen.

Every workload is the same planned sequence run under both backends —
results are bit-identical by contract (the identity suite and the fuzzer
enforce it), so the only thing these rows measure is the cost of the
execution strategy.  With numba absent the codegen rows use the stitch
flavor and the expectation is parity; with numba installed the pure apply
chain is where the compiled scalar loop pays.

``python -m repro.kernels.bench`` is the CLI twin that writes the
``BENCH_pr8.json`` trajectory baseline.
"""

import pytest

from repro import parallel
from repro.kernels import bench as kb
from repro.kernels import codegen

from conftest import header, row

FLAVOR = "numba" if codegen._numba_available() else "stitch"


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    parallel.set_kernel_backend("interpreter")


class BenchCodegen:
    @pytest.mark.parametrize("backend", ["interpreter", "codegen"])
    def bench_apply_chain(self, benchmark, backend):
        fused, sums = benchmark(
            lambda: kb.wl_apply_chain(backend, n=400, nnz=24000, depth=4)
        )
        header(f"fused apply chain — {backend}"
               + (f" [{FLAVOR}]" if backend == "codegen" else ""))
        row("12-link FP64 apply pipeline", f"fused={fused}")

    @pytest.mark.parametrize("backend", ["interpreter", "codegen"])
    def bench_mxm_chain(self, benchmark, backend):
        fused, sums = benchmark(lambda: kb.wl_mxm_chain(backend, 400, 24000))
        row(f"mxm→apply→apply→select ({backend})", f"fused={fused}")

    @pytest.mark.parametrize("backend", ["interpreter", "codegen"])
    def bench_small_many(self, benchmark, backend):
        fused, sums = benchmark(lambda: kb.wl_small_many(backend, 60))
        row(f"60 small chains ({backend})", f"fused={fused}")
