"""Fig. 3 / section VIII — betweenness centrality, the paper's workload.

The paper reports only that the Fig. 3 code *works* on GBTL (section
VIII); the interesting reproducible shape is the one the batched
formulation exists for: per-source cost drops as the batch widens (the
BFS sweeps amortize across columns of the frontier matrix), and the
GraphBLAS formulation tracks the classical Brandes baseline's results
exactly while scaling with batch size.
"""

import numpy as np
import pytest

import repro as grb
from repro.algorithms import bc_update, betweenness_centrality, brandes_baseline
from repro.io import rmat

from conftest import header, row


@pytest.fixture(scope="module")
def graph():
    return rmat(9, 8, seed=7, domain=grb.INT32)  # 512 vertices


@pytest.fixture(scope="module")
def baseline_bc(graph):
    return brandes_baseline(graph, sources=range(64))


class BenchBatchSweep:
    """Per-source cost vs batch size — the figure this code regenerates."""

    @pytest.mark.parametrize("batch", [1, 4, 16, 64])
    def bench_bc_batch(self, benchmark, graph, baseline_bc, batch):
        sources = np.arange(64)

        def run():
            total = np.zeros(graph.nrows)
            for lo in range(0, 64, batch):
                delta = bc_update(graph, sources[lo : lo + batch])
                total += delta.to_dense(0.0)
                delta.free()
            return total

        total = benchmark(run)
        if batch == 1:
            header("Fig. 3: BC_update batch-size sweep (64 sources, RMAT-9)")
        err = np.abs(total - baseline_bc).max()
        rel = err / max(1.0, np.abs(baseline_bc).max())
        row(f"batch={batch:3d}", f"max rel err={rel:.2e}")
        assert rel < 1e-4


class BenchVsBaseline:
    def bench_graphblas_full(self, benchmark, graph):
        result = benchmark.pedantic(
            lambda: betweenness_centrality(graph, batch_size=64),
            rounds=3, iterations=1,
        )
        header("Fig. 3: full BC, GraphBLAS batched vs classical Brandes")
        row("GraphBLAS result sum", f"{result.sum():.1f}")

    def bench_brandes_baseline_full(self, benchmark, graph):
        result = benchmark.pedantic(
            lambda: brandes_baseline(graph), rounds=3, iterations=1
        )
        row("baseline result sum", f"{result.sum():.1f}")


class BenchPhases:
    """Forward sweep vs tally phase cost split (the two loops of Fig. 3)."""

    def bench_forward_sweep_only(self, benchmark, graph):
        # the do-while of lines 39-46 in isolation: repeated masked mxm
        from repro.algebra import PLUS_TIMES
        from repro.ops import binary

        n = graph.nrows
        s = np.arange(32)

        def run():
            numsp = grb.Matrix(grb.INT32, n, 32)
            numsp.build(s, np.arange(32), np.ones(32), binary.PLUS[grb.INT32])
            frontier = grb.Matrix(grb.INT32, n, 32)
            grb.matrix_extract(frontier, numsp, None, graph, grb.ALL, s, grb.DESC_TSR)
            depth = 0
            while True:
                grb.ewise_add(
                    numsp, None, None, binary.PLUS[grb.INT32], numsp, frontier
                )
                grb.mxm(
                    frontier, numsp, None, PLUS_TIMES[grb.INT32],
                    graph, frontier, grb.DESC_TSR,
                )
                depth += 1
                if frontier.nvals() == 0:
                    break
            return depth

        depth = benchmark(run)
        header("Fig. 3 phase split (32 sources)")
        row("forward sweep", f"BFS depth={depth}")

    def bench_full_update(self, benchmark, graph):
        delta = benchmark(lambda: bc_update(graph, np.arange(32)))
        row("forward + tally (full BC_update)", f"nvals={delta.nvals()}")
