"""Disabled-overhead guard: obs instrumentation must be ~free when off.

Two shapes of the same check:

* pytest-benchmark cases (``bench_obs_*``) so the overhead shows up in
  the normal benchmark tables, and
* a direct min-of-K interleaved comparison (``test_obs_disabled_overhead``)
  that CI runs as a smoke assertion — the BC workload with the obs layer
  disarmed must land within 3% (plus a small absolute slack for timer
  noise) of the same workload with every instrumentation seam
  monkeypatched out, i.e. seed behavior.

Interleaving the A/B samples and taking per-side minima makes the guard
robust to CI frequency scaling; the absolute slack keeps a sub-millisecond
workload from tripping on scheduler jitter.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro as grb
from repro import context, obs
from repro.algorithms import bc_update
from repro.io import rmat

# repro.execution re-exports the `trace` context manager under the same
# name as the module; go through sys.modules for the module itself
import repro.execution.trace  # noqa: F401
import sys

trace_mod = sys.modules["repro.execution.trace"]

from conftest import header, row

SCALE = 7
SOURCES = 4


def _bc_once(A, batch):
    delta = bc_update(A, batch)
    nvals = delta.nvals()
    delta.free()
    return nvals


@pytest.fixture(scope="module")
def bc_workload():
    A = rmat(SCALE, 8, seed=7, domain=grb.INT32)
    return A, np.arange(SOURCES)


def bench_obs_disarmed_bc(benchmark, bc_workload):
    """BC with the obs layer present but disarmed (the default state)."""
    A, batch = bc_workload
    assert obs.spans.current() is None and not obs.metrics.enabled()
    result = benchmark(_bc_once, A, batch)
    header("obs overhead: disarmed BC")
    row(f"bc_update rmat{SCALE} batch{SOURCES}", "disarmed", result)


def bench_obs_capture_bc(benchmark, bc_workload):
    """BC under obs.capture() — the armed cost, for the record."""
    A, batch = bc_workload

    def run():
        with obs.capture():
            return _bc_once(A, batch)

    result = benchmark(run)
    header("obs overhead: captured BC")
    row(f"bc_update rmat{SCALE} batch{SOURCES}", "captured", result)


def _min_of_k(fn, k: int, inner: int) -> float:
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_disabled_overhead(bc_workload, monkeypatch):
    """CI smoke assertion: disarmed obs within 3% of seed behavior."""
    A, batch = bc_workload
    run = lambda: _bc_once(A, batch)

    K, INNER = 7, 3
    run()  # warmup: caches, lazy imports

    # interleave the two sides so frequency drift hits both equally
    disarmed = [float("inf")] * K
    stripped = [float("inf")] * K
    identity_wrap = lambda thunk, label, deferred=False, provenance=None: thunk
    for i in range(K):
        assert obs.spans.current() is None
        for _ in range(INNER):
            t0 = time.perf_counter()
            run()
            disarmed[i] = min(disarmed[i], time.perf_counter() - t0)
        with pytest.MonkeyPatch.context() as mp:
            # seed-equivalent: no wrap_thunk seam at all
            mp.setattr(trace_mod, "wrap_thunk", identity_wrap)
            mp.setattr(context, "_trace_wrap", identity_wrap)
            for _ in range(INNER):
                t0 = time.perf_counter()
                run()
                stripped[i] = min(stripped[i], time.perf_counter() - t0)

    a, b = min(disarmed), min(stripped)
    slack = 200e-6  # absolute jitter floor
    header("obs overhead guard")
    row("disarmed min (s)", f"{a:.6f}")
    row("stripped min (s)", f"{b:.6f}")
    row("ratio", f"{a / b:.4f}")
    assert a <= b * 1.03 + slack, (
        f"disarmed obs run {a:.6f}s exceeds 3% of stripped run {b:.6f}s"
    )


def test_obs_ring_retention_overhead(bc_workload, tmp_path):
    """Flight-recorder guard: the always-on span ring (capture OFF) within
    3% of the fully disarmed baseline.  The ring's close path is one
    deque.append with no lock, so retention must not show up in a
    nonblocking workload even though every drained span now lands
    somewhere."""
    from repro.obs import diag

    A, batch = bc_workload

    def run(rec=None):
        context._reset()  # force-disarms any ring: re-arm below
        if rec is not None:
            rec.install()
        grb.init(grb.Mode.NONBLOCKING)
        return _bc_once(A, batch)

    K, INNER = 7, 4
    run()  # warmup

    disarmed = [float("inf")] * K
    ringed = [float("inf")] * K
    try:
        rec, _ = diag.install(dump_dir=str(tmp_path))
        assert obs.spans._sink is None  # no capture armed throughout
        for i in range(K):
            for _ in range(INNER):
                t0 = time.perf_counter()
                run()
                disarmed[i] = min(disarmed[i], time.perf_counter() - t0)
            for _ in range(INNER):
                t0 = time.perf_counter()
                run(rec)
                ringed[i] = min(ringed[i], time.perf_counter() - t0)
        assert rec.ring.snapshot(), "ring retained nothing — guard is vacuous"
    finally:
        diag.uninstall()

    a, b = min(ringed), min(disarmed)
    # the two sides of one interleaved phase run back-to-back, so a CI
    # contention burst hits both; the best per-phase ratio survives bursts
    # that a cross-phase global min does not
    best_phase = min(r / d for r, d in zip(ringed, disarmed))
    slack = 200e-6
    header("flight-recorder ring overhead guard")
    row("ring-armed min (s)", f"{a:.6f}")
    row("disarmed min (s)", f"{b:.6f}")
    row("ratio", f"{a / b:.4f}")
    row("best phase ratio", f"{best_phase:.4f}")
    assert a <= b * 1.03 + slack or best_phase <= 1.03, (
        f"ring-armed run {a:.6f}s exceeds 3% of disarmed run {b:.6f}s "
        f"(best phase ratio {best_phase:.4f})"
    )


def test_obs_tracing_overhead(bc_workload):
    """Request tracing within 5%: an installed trace stamps every deferred
    op, but with no capture armed and no drain accounting collecting, that
    stamp (a thread-local read at enqueue plus provenance assembly at
    drain) must stay in the noise of a nonblocking workload."""
    from repro.obs import tracing

    A, batch = bc_workload

    def run():
        context._reset()
        grb.init(grb.Mode.NONBLOCKING)
        return _bc_once(A, batch)

    K, INNER = 7, 3
    run()  # warmup

    plain = [float("inf")] * K
    traced = [float("inf")] * K
    trace = tracing.TraceContext.mint()
    for i in range(K):
        for _ in range(INNER):
            t0 = time.perf_counter()
            run()
            plain[i] = min(plain[i], time.perf_counter() - t0)
        with tracing.use(trace):
            for _ in range(INNER):
                t0 = time.perf_counter()
                run()
                traced[i] = min(traced[i], time.perf_counter() - t0)

    a, b = min(traced), min(plain)
    slack = 200e-6
    header("request-tracing overhead guard")
    row("traced min (s)", f"{a:.6f}")
    row("untraced min (s)", f"{b:.6f}")
    row("ratio", f"{a / b:.4f}")
    assert a <= b * 1.05 + slack, (
        f"traced run {a:.6f}s exceeds 5% of untraced run {b:.6f}s"
    )
