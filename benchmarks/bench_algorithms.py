"""The introduction's motivating workloads, as an end-to-end suite.

The paper's premise is that a handful of semiring primitives compose into
"a wide range of graph algorithms".  This bench times the composed
algorithms themselves on the shared RMAT workload — the series downstream
users actually care about — plus networkx comparators where a fair one
exists (same algorithm, different substrate).
"""

import numpy as np
import pytest

import repro as grb
from repro.algorithms import (
    bfs_levels,
    connected_components,
    maximal_independent_set,
    pagerank,
    sssp,
    triangle_count,
)
from repro.io import rmat, to_networkx

from conftest import header, row


@pytest.fixture(scope="module")
def graph():
    return rmat(10, 8, seed=71)  # 1024 vertices


@pytest.fixture(scope="module")
def sym_graph(graph):
    B = grb.Matrix(grb.BOOL, graph.nrows, graph.ncols)
    grb.ewise_add(B, None, None, grb.LOR, graph, graph, grb.DESC_T1)
    return B


@pytest.fixture(scope="module")
def weighted(graph):
    from repro.io import erdos_renyi

    return erdos_renyi(1024, 8192, seed=72, domain=grb.FP64, weighted=True)


class BenchAlgorithms:
    def bench_bfs(self, benchmark, graph):
        lv = benchmark(lambda: bfs_levels(graph, 0))
        header("Motivating workloads (RMAT-10, 1024 vertices)")
        row("BFS levels", f"reached={lv.nvals()}")

    def bench_bfs_networkx(self, benchmark, graph):
        import networkx as nx

        G = to_networkx(graph, weighted=False)
        got = benchmark(lambda: nx.single_source_shortest_path_length(G, 0))
        row("BFS (networkx comparator)", f"reached={len(got)}")

    def bench_sssp(self, benchmark, weighted):
        d = benchmark(lambda: sssp(weighted, 0))
        row("SSSP min-plus", f"reached={d.nvals()}")

    def bench_sssp_networkx(self, benchmark, weighted):
        import networkx as nx

        G = to_networkx(weighted)
        got = benchmark(
            lambda: nx.single_source_dijkstra_path_length(G, 0)
        )
        row("SSSP (networkx dijkstra)", f"reached={len(got)}")

    def bench_pagerank(self, benchmark, graph):
        pr = benchmark(lambda: pagerank(graph, tol=1e-8))
        row("PageRank", f"top={int(np.argmax(pr))}")

    def bench_pagerank_networkx(self, benchmark, graph):
        import networkx as nx

        G = to_networkx(graph)
        got = benchmark(lambda: nx.pagerank(G, tol=1e-8 / 1024))
        row("PageRank (networkx)", f"top={max(got, key=got.get)}")

    def bench_triangles(self, benchmark, sym_graph):
        tri = benchmark(lambda: triangle_count(sym_graph))
        row("triangle count (masked SpGEMM)", tri)

    def bench_triangles_networkx(self, benchmark, sym_graph):
        import networkx as nx

        G = to_networkx(sym_graph, weighted=False).to_undirected()
        tri = benchmark(lambda: sum(nx.triangles(G).values()) // 3)
        row("triangle count (networkx)", tri)

    def bench_components(self, benchmark, sym_graph):
        labels = benchmark(lambda: connected_components(sym_graph))
        row("connected components", len(np.unique(labels)))

    def bench_mis(self, benchmark, sym_graph):
        mis = benchmark(lambda: maximal_independent_set(sym_graph, seed=3))
        row("maximal independent set", len(mis))


class BenchSecondWave:
    """The extension algorithms (k-core, truss, closure, coloring)."""

    def bench_core_numbers(self, benchmark, sym_graph):
        from repro.algorithms import core_numbers

        cores = benchmark.pedantic(
            lambda: core_numbers(sym_graph), rounds=3, iterations=1
        )
        header("Second-wave workloads (same RMAT-10)")
        row("core numbers", f"max k={int(cores.max())}")

    def bench_core_numbers_networkx(self, benchmark, sym_graph):
        import networkx as nx

        G = to_networkx(sym_graph, weighted=False).to_undirected()
        got = benchmark.pedantic(
            lambda: nx.core_number(G), rounds=3, iterations=1
        )
        row("core numbers (networkx)", f"max k={max(got.values())}")

    def bench_k_truss(self, benchmark, sym_graph):
        from repro.algorithms import k_truss

        T = benchmark.pedantic(
            lambda: k_truss(sym_graph, 4), rounds=3, iterations=1
        )
        row("4-truss", f"edges={T.nvals() // 2}")

    def bench_lcc(self, benchmark, sym_graph):
        from repro.algorithms import local_clustering_coefficient

        lcc = benchmark(lambda: local_clustering_coefficient(sym_graph))
        row("local clustering coefficient", f"mean={lcc.mean():.4f}")

    def bench_coloring(self, benchmark, sym_graph):
        from repro.algorithms import greedy_coloring

        colors = benchmark.pedantic(
            lambda: greedy_coloring(sym_graph, seed=2), rounds=3, iterations=1
        )
        row("greedy coloring", f"colors={int(colors.max()) + 1}")

    def bench_transitive_closure_small(self, benchmark):
        from repro.algorithms import transitive_closure
        from repro.io import erdos_renyi

        G = erdos_renyi(300, 900, seed=81)
        R = benchmark.pedantic(
            lambda: transitive_closure(G), rounds=3, iterations=1
        )
        row("transitive closure (n=300)", f"reachable pairs={R.nvals()}")

    def bench_apsp_small(self, benchmark):
        from repro.algorithms import apsp
        from repro.io import erdos_renyi

        G = erdos_renyi(300, 1800, seed=82, domain=grb.FP64, weighted=True)
        D = benchmark.pedantic(lambda: apsp(G), rounds=3, iterations=1)
        finite = np.isfinite(D) & (D > 0)
        row("APSP min-plus (n=300)", f"mean dist={D[finite].mean():.2f}")

    def bench_scc(self, benchmark, graph):
        from repro.algorithms import strongly_connected_components

        labels = benchmark.pedantic(
            lambda: strongly_connected_components(graph), rounds=3, iterations=1
        )
        row("strongly connected components", len(np.unique(labels)))

    def bench_scc_networkx(self, benchmark, graph):
        import networkx as nx

        G = to_networkx(graph, weighted=False)
        comps = benchmark.pedantic(
            lambda: list(nx.strongly_connected_components(G)),
            rounds=3, iterations=1,
        )
        row("SCC (networkx)", len(comps))

    def bench_toposort(self, benchmark):
        import networkx as nx

        from repro.algorithms import topological_sort
        from repro.io import from_networkx

        dag = nx.gn_graph(1024, seed=7)
        A = from_networkx(dag)
        order = benchmark.pedantic(
            lambda: topological_sort(A), rounds=3, iterations=1
        )
        row("topological sort (n=1024 DAG)", f"layers traversed, |V|={len(order)}")
