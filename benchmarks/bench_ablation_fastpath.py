"""Ablation — kernel fast paths.

Two design choices DESIGN.md calls out:

* **ufunc fast path**: predefined operators carry a numpy ufunc, letting
  segment reductions run as ``reduceat``; a user-defined operator with the
  same semantics but no ufunc falls back to Python loops.  The gap is the
  price of generality — and why the predefined registry matters.
* **thread-parallel SpGEMM**: contiguous row blocks on the shared pool.
  numpy releases the GIL inside kernels, so even Python threads help once
  the product is large enough.
"""

import numpy as np
import pytest

import repro as grb
from repro import parallel
from repro.algebra import predefined
from repro.io import erdos_renyi
from repro.ops import binary

from conftest import header, row


@pytest.fixture(autouse=True)
def restore_parallel():
    yield
    parallel.set_num_threads(1)
    parallel.set_parallel_threshold(200_000)


@pytest.fixture(scope="module")
def workload():
    return erdos_renyi(900, 18000, seed=61, domain=grb.INT64)


@pytest.fixture(scope="module")
def user_semiring():
    """plus_times rebuilt from user-defined ops WITHOUT ufuncs."""
    uplus = grb.binary_op_new(
        lambda a, b: a + b, grb.INT64, grb.INT64, grb.INT64,
        name="user_plus", associative=True, commutative=True,
    )
    utimes = grb.binary_op_new(
        lambda a, b: a * b, grb.INT64, grb.INT64, grb.INT64,
        name="user_times", commutative=True,
    )
    add = grb.monoid_new(uplus, 0)
    return grb.semiring_new(add, utimes)


class BenchUfuncFastPath:
    def bench_predefined_semiring(self, benchmark, workload):
        def run():
            C = grb.Matrix(grb.INT64, 900, 900)
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], workload, workload)
            return C

        C = benchmark(run)
        header("Ablation: ufunc fast path vs generic operator fallback")
        row("predefined PLUS_TIMES (ufunc reduceat)", f"nvals={C.nvals()}")

    def bench_user_defined_semiring(self, benchmark, workload, user_semiring):
        def run():
            C = grb.Matrix(grb.INT64, 900, 900)
            grb.mxm(C, None, None, user_semiring, workload, workload)
            return C

        C = benchmark.pedantic(run, rounds=3, iterations=1)
        row("user-defined plus/times (Python loops)", f"nvals={C.nvals()}")

    def bench_results_identical(self, benchmark, workload, user_semiring):
        def run():
            C1 = grb.Matrix(grb.INT64, 900, 900)
            grb.mxm(C1, None, None, predefined.PLUS_TIMES[grb.INT64], workload, workload)
            C2 = grb.Matrix(grb.INT64, 900, 900)
            grb.mxm(C2, None, None, user_semiring, workload, workload)
            a, b = C1.extract_tuples(), C2.extract_tuples()
            assert np.array_equal(a[0], b[0]) and np.array_equal(a[2], b[2])
            return len(a[0])

        n = benchmark.pedantic(run, rounds=1, iterations=1)
        row("fast path == fallback", f"verified on {n} tuples")


class BenchParallelSpGEMM:
    @pytest.fixture(scope="class")
    def big(self):
        return erdos_renyi(3000, 120000, seed=62, domain=grb.INT64)

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def bench_threads(self, benchmark, big, threads):
        parallel.set_num_threads(threads)
        parallel.set_parallel_threshold(1)

        def run():
            C = grb.Matrix(grb.INT64, 3000, 3000)
            grb.mxm(C, None, None, predefined.PLUS_TIMES[grb.INT64], big, big)
            return C

        C = benchmark.pedantic(run, rounds=3, iterations=1)
        if threads == 1:
            header("Ablation: row-blocked thread-parallel SpGEMM (3000^2)")
        row(f"threads={threads}", f"nvals={C.nvals()}")
