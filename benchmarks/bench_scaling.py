"""Scaling series — the figure-style sweeps downstream papers plot.

Three series on RMAT graphs of growing scale:

* ``mxm`` (A ⊕.⊗ A) time vs. edge count — should grow near-linearly in
  flops for the expand-sort-reduce kernel;
* BFS time vs. scale — frontier-bound, dominated by per-level overhead on
  small graphs;
* Fig. 3 ``BC_update`` (32-source batch) vs. scale.

Each parametrized case is one point of the series; the pytest-benchmark
table *is* the figure data.

The backend sweep re-runs the mxm series under each execution backend
(``serial`` / ``threads`` / ``processes``); the processes column is the
shard pool's scaling point, honest about the host core count (a 1-core
CI runner oversubscribes the pool and shows IPC overhead, not speedup).
"""

import os

import numpy as np
import pytest

import repro as grb
from repro import context, parallel
from repro.algebra import PLUS_TIMES
from repro.algorithms import bc_update, bfs_levels
from repro.io import rmat

from conftest import header, row

SCALES = [7, 8, 9, 10]
BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def graphs():
    return {s: rmat(s, 8, seed=42, domain=grb.INT32) for s in SCALES}


class BenchMxmScaling:
    @pytest.mark.parametrize("scale", SCALES)
    def bench_mxm_scale(self, benchmark, graphs, scale):
        A = graphs[scale]

        def run():
            C = grb.Matrix(grb.INT32, A.nrows, A.ncols)
            grb.mxm(C, None, None, PLUS_TIMES[grb.INT32], A, A)
            return C

        C = benchmark(run)
        if scale == SCALES[0]:
            header("Scaling series: mxm on RMAT (edge_factor 8)")
        row(
            f"scale {scale} (n={A.nrows}, m={A.nvals()})",
            f"out nvals={C.nvals()}",
        )


class BenchMxmBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scale", SCALES)
    def bench_mxm_backend(self, benchmark, graphs, scale, backend):
        A = graphs[scale]
        context.init(context.Mode.NONBLOCKING)
        parallel.set_backend(backend)
        if backend == "processes":
            # ship everything; pool sized to the host, capped at 8
            parallel.set_parallel_threshold(0)
            parallel.set_shard_workers(max(2, min(8, os.cpu_count() or 1)))

        def run():
            C = grb.Matrix(grb.INT32, A.nrows, A.ncols)
            grb.mxm(C, None, None, PLUS_TIMES[grb.INT32], A, A)
            grb.wait()
            return C

        try:
            C = benchmark(run)
        finally:
            parallel.set_backend("threads")
            parallel.set_parallel_threshold(parallel.config.DEFAULT_THRESHOLD)
        if scale == SCALES[0] and backend == BACKENDS[0]:
            header("Scaling series: mxm by backend (nonblocking drain)")
        row(
            f"scale {scale} {backend} (m={A.nvals()})",
            f"out nvals={C.nvals()}",
        )


class BenchBfsScaling:
    @pytest.mark.parametrize("scale", SCALES)
    def bench_bfs_scale(self, benchmark, graphs, scale):
        A = graphs[scale]
        lv = benchmark(lambda: bfs_levels(A, 0))
        if scale == SCALES[0]:
            header("Scaling series: BFS levels on RMAT")
        row(f"scale {scale}", f"reached={lv.nvals()}")


class BenchBcScaling:
    @pytest.mark.parametrize("scale", SCALES[:3])
    def bench_bc_scale(self, benchmark, graphs, scale):
        A = graphs[scale]
        batch = np.arange(32)
        delta = benchmark.pedantic(
            lambda: bc_update(A, batch), rounds=3, iterations=1
        )
        if scale == SCALES[0]:
            header("Scaling series: BC_update (32-source batch) on RMAT")
        row(f"scale {scale}", f"delta nvals={delta.nvals()}")
